//! A std-only HTTP/1.1 exposition listener for scrapes and dashboards.
//!
//! Runs on one dedicated thread, completely protocol-blind to the main
//! binary TCP tier (`--metrics-addr` binds a *different* port):
//!
//! * `GET /metrics` — every registered series in Prometheus text
//!   exposition format (counters, gauges, cumulative `le`-labeled
//!   histogram buckets);
//! * `GET /series?name=&window=&points=` — JSON time-series from the
//!   rollup rings (`window` = seconds per point, default 1; omit
//!   `name` for the list of series names);
//! * `GET /events?n=&level=` — JSON tail of the structured event log;
//! * `GET /slo` — JSON burn-rate status of every declared SLO;
//! * `GET /healthz` — `200 ok` while serving, `503 draining` once
//!   shutdown has begun.
//!
//! Connections are handled inline (`Connection: close`, one request
//! each): a scrape is microseconds of registry reads, and the
//! dedicated thread means a stalled scraper can never touch the
//! serving tier. Request parsing is the minimum HTTP/1.1 a scraper
//! emits — request line plus headers, GET only.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hammer_obs::{
    HistogramSnapshot, Level, MetricsSnapshot, PointValue, RollupSeries, SeriesValue, SloStatus,
};

use crate::server::ServerState;

/// How long a scraper may take to deliver its request line or accept
/// the response before the connection is reaped.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Accept-poll tick; bounds shutdown latency of the listener thread.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Binds the exposition listener and spawns its thread. The thread
/// exits within one accept tick of the server flagging shutdown.
pub(crate) fn spawn(
    addr: &str,
    state: Arc<ServerState>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("hammer-serve-http".into())
        .spawn(move || {
            while !state.is_shutting_down() {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream, &state),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_TICK);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_TICK),
                }
            }
        })?;
    Ok((local_addr, handle))
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT));
    let Some(target) = read_request_target(&mut stream) else {
        respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/healthz" => {
            if state.is_shutting_down() {
                respond(&mut stream, 503, "text/plain", "draining\n");
            } else {
                respond(&mut stream, 200, "text/plain", "ok\n");
            }
        }
        "/metrics" => {
            let body = prometheus_text(&state.obs_snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body);
        }
        "/series" => match series_json(state, query) {
            Ok(body) => respond(&mut stream, 200, "application/json", &body),
            Err(msg) => respond(&mut stream, 404, "text/plain", &format!("{msg}\n")),
        },
        "/events" => {
            let body = events_json(state, query);
            respond(&mut stream, 200, "application/json", &body);
        }
        "/slo" => {
            let body = slo_json(&state.slo_statuses());
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Reads the request head and returns the target of a GET request
/// (`/metrics?name=...`). Anything else — other methods, malformed
/// lines, a peer that stalls — returns `None`.
fn read_request_target(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until the blank line; request heads are tiny and
    // this never over-reads into a body (there is none for GET).
    while !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
        if head.len() > 8192 {
            return None; // oversized head: not a scraper
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    (method == "GET").then(|| target.to_owned())
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Value of `key` in a query string (`a=1&b=2`), undecoded. Series
/// names and the numeric parameters never need percent-escapes.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// /metrics — Prometheus text exposition
// ---------------------------------------------------------------------

/// `serve.stage.decode_ns` → `hammer_serve_stage_decode_ns`.
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("hammer_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders a whole snapshot in Prometheus text exposition format.
pub(crate) fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for s in &snap.series {
        let name = mangle(&s.name);
        match &s.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            SeriesValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            SeriesValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                push_histogram(&mut out, &name, h);
            }
        }
    }
    out
}

/// Emits cumulative `le`-labeled buckets. Each log₂ bucket's inclusive
/// upper bound is its `le`; buckets above the highest non-empty one are
/// elided (they would all repeat the total). `_sum` is approximated
/// from bucket midpoints — log₂ buckets do not retain exact sums — so
/// scrape consumers get a usable average at ≤ 50% bucket error.
fn push_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    let mut sum = 0.0f64;
    let highest = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    for (i, &c) in h.buckets.iter().enumerate().take(highest) {
        cum += c;
        let lo = if i == 0 { 0u64 } else { 1u64 << i };
        let hi = if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        };
        sum += c as f64 * ((lo as f64 + hi as f64) / 2.0);
        out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
    out.push_str(&format!("{name}_sum {sum:.0}\n"));
    out.push_str(&format!("{name}_count {cum}\n"));
}

// ---------------------------------------------------------------------
// /series, /events, /slo — hand-rolled JSON (the workspace carries no
// serde; every payload below is flat enough that escaping strings is
// the only subtlety)
// ---------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn series_json(state: &Arc<ServerState>, query: &str) -> Result<String, String> {
    let ts = state.time_series();
    let Some(name) = query_param(query, "name").filter(|n| !n.is_empty()) else {
        // No name: enumerate what can be queried.
        let names = ts.names();
        let list: Vec<String> = names
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        return Ok(format!("{{\"names\":[{}]}}", list.join(",")));
    };
    let window_secs: u64 = query_param(query, "window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let points: usize = query_param(query, "points")
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let group = ((window_secs.max(1) * 1_000) / ts.config().window_ms.max(1)).max(1) as usize;
    let series = ts
        .query(name, group, points.clamp(1, 10_000))
        .ok_or_else(|| format!("unknown series `{name}`"))?;
    Ok(render_series(&series))
}

fn render_series(series: &RollupSeries) -> String {
    let points: Vec<String> = series
        .points
        .iter()
        .map(|p| match &p.value {
            PointValue::Rate { delta, per_sec } => format!(
                "{{\"unix_ms\":{},\"delta\":{delta},\"per_sec\":{per_sec:.3}}}",
                p.unix_ms
            ),
            PointValue::Gauge { min, max, last } => format!(
                "{{\"unix_ms\":{},\"min\":{min},\"max\":{max},\"last\":{last}}}",
                p.unix_ms
            ),
            PointValue::Quantiles {
                count,
                p50_ns,
                p95_ns,
                p99_ns,
                max_ns,
            } => format!(
                "{{\"unix_ms\":{},\"count\":{count},\"p50_ns\":{p50_ns},\"p95_ns\":{p95_ns},\"p99_ns\":{p99_ns},\"max_ns\":{max_ns}}}",
                p.unix_ms
            ),
        })
        .collect();
    format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"point_window_ms\":{},\"points\":[{}]}}",
        json_escape(&series.name),
        series.kind.as_str(),
        series.point_window_ms,
        points.join(",")
    )
}

fn events_json(state: &Arc<ServerState>, query: &str) -> String {
    let n: usize = query_param(query, "n")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let min_level = query_param(query, "level")
        .and_then(Level::parse)
        .unwrap_or(Level::Debug);
    let log = state.event_log();
    let events: Vec<String> = log
        .tail(n.clamp(1, 10_000), min_level)
        .iter()
        .map(|e| {
            let fields: Vec<String> = e
                .fields
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect();
            format!(
                "{{\"seq\":{},\"unix_ms\":{},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\",\"trace_id\":\"{:016x}\",\"fields\":{{{}}}}}",
                e.seq,
                e.unix_ms,
                e.level.as_str(),
                json_escape(e.target),
                json_escape(&e.message),
                e.trace_id,
                fields.join(",")
            )
        })
        .collect();
    format!(
        "{{\"dropped\":{},\"events\":[{}]}}",
        log.dropped(),
        events.join(",")
    )
}

pub(crate) fn slo_json(statuses: &[SloStatus]) -> String {
    let slos: Vec<String> = statuses
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"firing\":{},\"fast_burn\":{:.3},\"slow_burn\":{:.3},\"bad_fraction\":{:.6},\"fast_windows\":{},\"slow_windows\":{}}}",
                json_escape(&s.name),
                s.firing,
                s.fast_burn,
                s.slow_burn,
                s.bad_fraction,
                s.fast_windows,
                s.slow_windows
            )
        })
        .collect();
    format!("{{\"slos\":[{}]}}", slos.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_obs::Registry;

    #[test]
    fn mangles_names_with_prefix() {
        assert_eq!(mangle("serve.requests"), "hammer_serve_requests");
        assert_eq!(
            mangle("serve.stage.decode_ns"),
            "hammer_serve_stage_decode_ns"
        );
    }

    #[test]
    fn prometheus_text_renders_all_kinds() {
        let reg = Registry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("serve.queue.depth").set(-2);
        let h = reg.histogram("serve.request_ns");
        h.record(100); // bucket 6: [64, 127]
        h.record(100);
        h.record(1_000); // bucket 9: [512, 1023]
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE hammer_serve_requests counter\nhammer_serve_requests 7\n"));
        assert!(
            text.contains("# TYPE hammer_serve_queue_depth gauge\nhammer_serve_queue_depth -2\n")
        );
        assert!(text.contains("hammer_serve_request_ns_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("hammer_serve_request_ns_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("hammer_serve_request_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("hammer_serve_request_ns_count 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_elide_the_tail() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.record(3); // bucket 1
        let text = prometheus_text(&reg.snapshot());
        // One real bucket plus +Inf; nothing for buckets 2..64.
        assert_eq!(text.matches("_bucket").count(), 3);
        assert!(text.contains("hammer_h_bucket{le=\"3\"} 1\n"));
    }

    #[test]
    fn query_params_parse() {
        let q = "name=serve.requests&window=60&points=5";
        assert_eq!(query_param(q, "name"), Some("serve.requests"));
        assert_eq!(query_param(q, "window"), Some("60"));
        assert_eq!(query_param(q, "missing"), None);
        assert_eq!(query_param("", "name"), None);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! In-process fault points for the chaos suite (feature
//! `fault-points`, on by default and **inert until armed**).
//!
//! The TCP-level faults ([`crate::chaos::ChaosProxy`]) exercise the
//! wire; these exercise the compute and persistence paths from the
//! inside: a panic in the middle of a leader's computation, a
//! computation that dawdles long enough for deadlines to fire, or a
//! hard `abort()` mid-way through a store append / before its fsync /
//! during recovery truncation (the `repro persist-smoke` crash
//! drills). All are process-wide globals — chaos tests that arm them
//! serialize on a lock and [`reset`] when done.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hammer_core::CancelToken;

/// Panic on the Nth compute after arming (1-based); 0 = disarmed.
static PANIC_ON_NTH: AtomicU64 = AtomicU64::new(0);
/// Computes observed since the panic fault was last armed.
static COMPUTES_SEEN: AtomicU64 = AtomicU64::new(0);
/// Extra latency injected into every compute, in milliseconds.
static SLOW_MS: AtomicU64 = AtomicU64::new(0);
/// Abort on the Nth store append, mid-record (1-based); 0 = disarmed.
static ABORT_ON_NTH_APPEND: AtomicU64 = AtomicU64::new(0);
/// Store appends observed since the append fault was last armed.
static APPENDS_SEEN: AtomicU64 = AtomicU64::new(0);
/// Abort on the Nth store append, just before fsync; 0 = disarmed.
static ABORT_ON_NTH_FSYNC: AtomicU64 = AtomicU64::new(0);
/// Pre-fsync points observed since the fsync fault was last armed.
static FSYNCS_SEEN: AtomicU64 = AtomicU64::new(0);
/// Abort on the Nth recovery truncation; 0 = disarmed.
static ABORT_ON_NTH_RECOVERY: AtomicU64 = AtomicU64::new(0);
/// Recovery truncations observed since that fault was last armed.
static RECOVERIES_SEEN: AtomicU64 = AtomicU64::new(0);

/// Arms a panic on the `n`-th compute from now (1 = the very next one).
pub fn arm_panic_on_nth_compute(n: u64) {
    COMPUTES_SEEN.store(0, Ordering::SeqCst);
    PANIC_ON_NTH.store(n, Ordering::SeqCst);
}

/// Injects `ms` milliseconds of extra latency into every compute. The
/// sleep is taken in small slices that honor the request's cancel
/// token, so a deadline still cuts a slowed compute short.
pub fn set_slow_compute_ms(ms: u64) {
    SLOW_MS.store(ms, Ordering::SeqCst);
}

/// Aborts the process on the `n`-th store append from now, after the
/// record header reaches the file but before its body does — the
/// sharpest possible torn-write: a structurally truncated record at
/// the segment tail.
pub fn arm_abort_on_nth_store_append(n: u64) {
    APPENDS_SEEN.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_APPEND.store(n, Ordering::SeqCst);
}

/// Aborts the process on the `n`-th store append from now, after the
/// full record is written but before the fsync commit point. The
/// record may or may not survive — the drill asserts only that the
/// store recovers *cleanly*, because fsync is a durability floor, not
/// a ceiling.
pub fn arm_abort_on_nth_store_fsync(n: u64) {
    FSYNCS_SEEN.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_FSYNC.store(n, Ordering::SeqCst);
}

/// Aborts the process on the `n`-th torn-tail truncation during store
/// recovery — a crash *during* crash recovery, which must itself be
/// recoverable.
pub fn arm_abort_on_nth_recovery_truncate(n: u64) {
    RECOVERIES_SEEN.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_RECOVERY.store(n, Ordering::SeqCst);
}

/// Disarms every fault point.
pub fn reset() {
    PANIC_ON_NTH.store(0, Ordering::SeqCst);
    COMPUTES_SEEN.store(0, Ordering::SeqCst);
    SLOW_MS.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_APPEND.store(0, Ordering::SeqCst);
    APPENDS_SEEN.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_FSYNC.store(0, Ordering::SeqCst);
    FSYNCS_SEEN.store(0, Ordering::SeqCst);
    ABORT_ON_NTH_RECOVERY.store(0, Ordering::SeqCst);
    RECOVERIES_SEEN.store(0, Ordering::SeqCst);
}

/// Fires an armed Nth-event abort. `abort()` (not `panic!`) so nothing
/// unwinds, no destructor flushes, no buffered write escapes — as
/// close to `kill -9` as the process can do to itself.
fn maybe_abort(armed: &AtomicU64, seen: &AtomicU64, what: &str) {
    let n = armed.load(Ordering::SeqCst);
    if n > 0 && seen.fetch_add(1, Ordering::SeqCst) + 1 == n {
        // The builder commits (and echoes to stderr) on drop — before
        // the abort, so the crash drills still see the line.
        drop(
            hammer_obs::EventLog::global()
                .error("fault", "fault point aborting process")
                .field("point", what),
        );
        std::process::abort();
    }
}

/// Hook between a record header's write and its body's (torn write).
pub(crate) fn on_store_append() {
    maybe_abort(&ABORT_ON_NTH_APPEND, &APPENDS_SEEN, "mid store append");
}

/// Hook after a record's write but before its fsync commit point.
pub(crate) fn on_store_fsync() {
    maybe_abort(&ABORT_ON_NTH_FSYNC, &FSYNCS_SEEN, "before store fsync");
}

/// Hook right after recovery truncates a torn tail.
pub(crate) fn on_recovery_truncate() {
    maybe_abort(
        &ABORT_ON_NTH_RECOVERY,
        &RECOVERIES_SEEN,
        "during recovery truncation",
    );
}

/// The hook the server calls at the start of every leader compute.
pub(crate) fn on_compute(cancel: Option<&CancelToken>) {
    let armed = PANIC_ON_NTH.load(Ordering::SeqCst);
    if armed > 0 && COMPUTES_SEEN.fetch_add(1, Ordering::SeqCst) + 1 == armed {
        PANIC_ON_NTH.store(0, Ordering::SeqCst);
        panic!("fault point: armed compute panic");
    }
    let slow = SLOW_MS.load(Ordering::SeqCst);
    if slow > 0 {
        let mut left = Duration::from_millis(slow);
        let slice = Duration::from_millis(2);
        while !left.is_zero() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return; // the compute proper will observe the token
            }
            let nap = left.min(slice);
            std::thread::sleep(nap);
            left -= nap;
        }
    }
}

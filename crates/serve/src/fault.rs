//! In-process fault points for the chaos suite (feature
//! `fault-points`, on by default and **inert until armed**).
//!
//! The TCP-level faults ([`crate::chaos::ChaosProxy`]) exercise the
//! wire; these exercise the compute path from the inside: a panic in
//! the middle of a leader's computation, or a computation that dawdles
//! long enough for deadlines to fire. Both are process-wide globals —
//! chaos tests that arm them serialize on a lock and [`reset`] when
//! done.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hammer_core::CancelToken;

/// Panic on the Nth compute after arming (1-based); 0 = disarmed.
static PANIC_ON_NTH: AtomicU64 = AtomicU64::new(0);
/// Computes observed since the panic fault was last armed.
static COMPUTES_SEEN: AtomicU64 = AtomicU64::new(0);
/// Extra latency injected into every compute, in milliseconds.
static SLOW_MS: AtomicU64 = AtomicU64::new(0);

/// Arms a panic on the `n`-th compute from now (1 = the very next one).
pub fn arm_panic_on_nth_compute(n: u64) {
    COMPUTES_SEEN.store(0, Ordering::SeqCst);
    PANIC_ON_NTH.store(n, Ordering::SeqCst);
}

/// Injects `ms` milliseconds of extra latency into every compute. The
/// sleep is taken in small slices that honor the request's cancel
/// token, so a deadline still cuts a slowed compute short.
pub fn set_slow_compute_ms(ms: u64) {
    SLOW_MS.store(ms, Ordering::SeqCst);
}

/// Disarms every fault point.
pub fn reset() {
    PANIC_ON_NTH.store(0, Ordering::SeqCst);
    COMPUTES_SEEN.store(0, Ordering::SeqCst);
    SLOW_MS.store(0, Ordering::SeqCst);
}

/// The hook the server calls at the start of every leader compute.
pub(crate) fn on_compute(cancel: Option<&CancelToken>) {
    let armed = PANIC_ON_NTH.load(Ordering::SeqCst);
    if armed > 0 && COMPUTES_SEEN.fetch_add(1, Ordering::SeqCst) + 1 == armed {
        PANIC_ON_NTH.store(0, Ordering::SeqCst);
        panic!("fault point: armed compute panic");
    }
    let slow = SLOW_MS.load(Ordering::SeqCst);
    if slow > 0 {
        let mut left = Duration::from_millis(slow);
        let slice = Duration::from_millis(2);
        while !left.is_zero() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return; // the compute proper will observe the token
            }
            let nap = left.min(slice);
            std::thread::sleep(nap);
            left -= nap;
        }
    }
}

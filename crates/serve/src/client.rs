//! `ServeClient`: the synchronous, reconnecting client.
//!
//! One client owns one connection and issues one request at a time
//! (replies are matched by request id regardless, so a future pipelined
//! client can share the wire format unchanged). On a transport error
//! the client transparently reconnects **once** and retries the request
//! — every opcode is semantically idempotent (reconstruction is a pure
//! function of its payload; `SampleAndReconstruct` is seeded), so a
//! retry can change latency but never the answer.
//!
//! [`Reply::Busy`] (the server's admission queue is full) is likewise
//! retried, with a bounded linear backoff: backpressure is transient by
//! design, and surfacing the very first `Busy` as a hard
//! [`WireError::Busy`] forced every caller to hand-roll the same retry
//! loop. [`ServeClient::with_busy_retries`] tunes or disables it.

use std::net::TcpStream;
use std::time::Duration;

use hammer_core::HammerConfig;
use hammer_dist::{BitString, Counts, Distribution};

use crate::codec::{MetricsReply, Reply, Request, SampleJob, ServeStats};
use crate::protocol::{read_frame, write_frame, WireError};

/// A synchronous client for a `hammer_serve` endpoint.
///
/// # Example
///
/// ```no_run
/// use hammer_serve::ServeClient;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut client = ServeClient::connect("127.0.0.1:7878")?;
/// client.ping()?;
/// # Ok(())
/// # }
/// ```
pub struct ServeClient {
    addr: String,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Additional attempts after a [`Reply::Busy`] before giving up.
    busy_retries: u32,
    /// Backoff before busy retry `i` (1-based): `i × busy_backoff`.
    busy_backoff: Duration,
}

impl ServeClient {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl Into<String>) -> std::io::Result<Self> {
        let addr = addr.into();
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            addr,
            stream: Some(stream),
            next_id: 1,
            busy_retries: 3,
            busy_backoff: Duration::from_millis(10),
        })
    }

    /// Tunes the bounded `Busy` retry: up to `retries` additional
    /// attempts after a busy reply, sleeping `i × backoff` before the
    /// `i`-th retry (linear backoff). `retries = 0` restores the old
    /// fail-fast behavior where the first busy reply surfaces as
    /// [`WireError::Busy`].
    #[must_use]
    pub fn with_busy_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.busy_retries = retries;
        self.busy_backoff = backoff;
        self
    }

    /// The endpoint address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn ensure_stream(&mut self) -> Result<&mut TcpStream, WireError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true).ok();
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn call_once(&mut self, id: u64, request: &Request) -> Result<Reply, WireError> {
        let opcode = request.opcode();
        let payload = request.encode();
        let stream = self.ensure_stream()?;
        write_frame(stream, id, opcode, &payload)?;
        loop {
            let (reply_id, op, body) = read_frame(stream)?;
            // A sync client has exactly one request outstanding; anything
            // else (e.g. an id-0 framing report) ends the exchange.
            if reply_id == id || reply_id == 0 {
                return Reply::decode(op, &body);
            }
        }
    }

    /// Sends one request and reads its reply, reconnecting and retrying
    /// once on a transport failure, and retrying up to
    /// [`with_busy_retries`](ServeClient::with_busy_retries) further
    /// times (with linear backoff) when the server answers `Busy`.
    ///
    /// # Errors
    ///
    /// The final [`WireError`] after the retries; a `Busy` reply that
    /// outlives every retry is returned as-is for the typed helpers to
    /// surface as [`WireError::Busy`].
    pub fn call(&mut self, request: &Request) -> Result<Reply, WireError> {
        let mut busy_attempts = 0u32;
        loop {
            let id = self.next_id;
            self.next_id += 1;
            let result = match self.call_once(id, request) {
                Err(WireError::Io(_)) => {
                    // The connection died (server restart, idle
                    // timeout…): rebuild it and retry the idempotent
                    // request once.
                    self.stream = None;
                    self.call_once(id, request)
                }
                other => other,
            };
            match result {
                Ok(Reply::Busy) if busy_attempts < self.busy_retries => {
                    // Backpressure is transient: give the admission
                    // queue `i × backoff` to drain, then re-ask.
                    busy_attempts += 1;
                    std::thread::sleep(self.busy_backoff * busy_attempts);
                }
                other => return other,
            }
        }
    }

    /// In-band replies that abort a typed helper.
    fn unexpected(reply: Reply) -> WireError {
        match reply {
            Reply::Busy => WireError::Busy,
            Reply::Error(msg) => WireError::Remote(msg),
            other => WireError::UnexpectedReply(other.opcode()),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Reconstructs a measured histogram on the server.
    ///
    /// # Errors
    ///
    /// [`WireError::Busy`] under backpressure, [`WireError::Remote`]
    /// on a server-side failure, transport/protocol failures otherwise.
    pub fn reconstruct(
        &mut self,
        counts: &Counts,
        config: &HammerConfig,
    ) -> Result<Distribution, WireError> {
        let request = Request::Reconstruct {
            config: *config,
            counts: counts.clone(),
        };
        match self.call(&request)? {
            Reply::Distribution(d) => Ok(d),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Scores a distribution against a correct-outcome set.
    ///
    /// # Errors
    ///
    /// As for [`reconstruct`](ServeClient::reconstruct).
    pub fn metrics(
        &mut self,
        dist: &Distribution,
        correct: &[BitString],
    ) -> Result<MetricsReply, WireError> {
        // Outcome widths are implicit on the wire (the distribution's
        // width governs the limb layout), so a mismatch must be caught
        // here — encoding it would silently reinterpret the bits.
        if let Some(bad) = correct.iter().find(|x| x.len() != dist.n_bits()) {
            return Err(WireError::Malformed(format!(
                "correct outcome width {} does not match distribution width {}",
                bad.len(),
                dist.n_bits()
            )));
        }
        let request = Request::Metrics {
            dist: dist.clone(),
            correct: correct.to_vec(),
        };
        match self.call(&request)? {
            Reply::Metrics(m) => Ok(m),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Runs the full simulate-then-reconstruct pipeline on the server.
    ///
    /// # Errors
    ///
    /// As for [`reconstruct`](ServeClient::reconstruct).
    pub fn sample_and_reconstruct(&mut self, job: &SampleJob) -> Result<Distribution, WireError> {
        match self.call(&Request::SampleAndReconstruct(job.clone()))? {
            Reply::Distribution(d) => Ok(d),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Snapshots the serving counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<ServeStats, WireError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Requests graceful shutdown.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Shutdown)? {
            Reply::ShutdownAck => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}

//! `ServeClient`: the synchronous, reconnecting client.
//!
//! One client owns one connection and issues one request at a time
//! (replies are matched by request id regardless, so a future pipelined
//! client can share the wire format unchanged). On a transport error
//! the client transparently reconnects **once** and retries the request
//! — every opcode is semantically idempotent (reconstruction is a pure
//! function of its payload; `SampleAndReconstruct` is seeded), so a
//! retry can change latency but never the answer.
//!
//! [`Reply::Busy`] (the server's admission queue is full) is likewise
//! retried, with a bounded linear backoff: backpressure is transient by
//! design, and surfacing the very first `Busy` as a hard
//! [`WireError::Busy`] forced every caller to hand-roll the same retry
//! loop. [`ServeClient::with_busy_retries`] tunes or disables it.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use hammer_core::HammerConfig;
use hammer_dist::{BitString, Counts, Distribution};

use crate::codec::{MetricsReply, Reply, Request, SampleJob, ServeStats, TraceDumpEntry};
use crate::protocol::{read_frame, write_frame_traced, WireError};

/// The floor for a deadline-derived socket timeout: a budget of a few
/// milliseconds still deserves one real read attempt.
const MIN_SOCKET_WAIT: Duration = Duration::from_millis(5);

/// `set_read_timeout(Some(ZERO))` is an error, not "no timeout" — map a
/// zero duration (and `None`) to blocking I/O.
fn nonzero(timeout: Option<Duration>) -> Option<Duration> {
    timeout.filter(|t| !t.is_zero())
}

/// A synchronous client for a `hammer_serve` endpoint.
///
/// # Example
///
/// ```no_run
/// use hammer_serve::ServeClient;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut client = ServeClient::connect("127.0.0.1:7878")?;
/// client.ping()?;
/// # Ok(())
/// # }
/// ```
pub struct ServeClient {
    addr: String,
    stream: Option<TcpStream>,
    next_id: u64,
    /// Additional attempts after a [`Reply::Busy`] before giving up.
    busy_retries: u32,
    /// Backoff before busy retry `i` (1-based): `i × busy_backoff`.
    busy_backoff: Duration,
    /// Socket read/write timeout; `None` blocks forever (a dead server
    /// mid-reply then hangs the caller — see
    /// [`with_io_timeout`](ServeClient::with_io_timeout)).
    io_timeout: Option<Duration>,
    /// Per-call time budget; stamped into every request frame so the
    /// server can cancel work the client stopped waiting for.
    deadline: Option<Duration>,
    /// A caller-pinned trace id; `None` generates a fresh one per call.
    pinned_trace_id: Option<u64>,
    /// The trace id the most recent call went out under (0 before the
    /// first call) — the handle for correlating a slow reply with the
    /// server's `TraceDump`.
    last_trace_id: u64,
}

impl ServeClient {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: impl Into<String>) -> std::io::Result<Self> {
        let addr = addr.into();
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            addr,
            stream: Some(stream),
            next_id: 1,
            busy_retries: 3,
            busy_backoff: Duration::from_millis(10),
            io_timeout: None,
            deadline: None,
            pinned_trace_id: None,
            last_trace_id: 0,
        })
    }

    /// Pins every subsequent call to one trace id instead of generating
    /// a fresh id per call — the tool for correlating a scripted
    /// sequence of requests in the server's `TraceDump`. `0` unpins.
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.pinned_trace_id = (trace_id != 0).then_some(trace_id);
        self
    }

    /// The trace id the most recent call was stamped with (stable
    /// across that call's transport/busy retries; 0 before any call).
    #[must_use]
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Bounds every socket read and write. Without one, a server that
    /// dies mid-reply (or a network that silently drops the connection)
    /// hangs the caller forever; with one, the stalled call surfaces as
    /// a retryable [`WireError::Io`] timeout. `None` restores blocking
    /// I/O.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.io_timeout = timeout;
        if let Some(stream) = &self.stream {
            let _ = stream.set_read_timeout(nonzero(timeout));
            let _ = stream.set_write_timeout(nonzero(timeout));
        }
        self
    }

    /// Gives every subsequent call a time budget. The remaining budget
    /// is stamped into each request frame (so the server can refuse or
    /// cancel work the client will no longer wait for), bounds the
    /// socket wait, and cuts the busy-retry loop short: once it runs
    /// out the call fails with [`WireError::DeadlineExceeded`]. `None`
    /// removes the budget.
    #[must_use]
    pub fn with_deadline(mut self, budget: Option<Duration>) -> Self {
        self.deadline = budget;
        self
    }

    /// Tunes the bounded `Busy` retry: up to `retries` additional
    /// attempts after a busy reply, sleeping `i × backoff` before the
    /// `i`-th retry (linear backoff). `retries = 0` restores the old
    /// fail-fast behavior where the first busy reply surfaces as
    /// [`WireError::Busy`].
    #[must_use]
    pub fn with_busy_retries(mut self, retries: u32, backoff: Duration) -> Self {
        self.busy_retries = retries;
        self.busy_backoff = backoff;
        self
    }

    /// The endpoint address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn ensure_stream(&mut self) -> Result<&mut TcpStream, WireError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(nonzero(self.io_timeout))?;
            stream.set_write_timeout(nonzero(self.io_timeout))?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    fn call_once(
        &mut self,
        id: u64,
        request: &Request,
        deadline: Option<Instant>,
        trace_id: u64,
    ) -> Result<Reply, WireError> {
        let opcode = request.opcode();
        let payload = request.encode();
        // The wire carries the *remaining* budget: milliseconds the
        // client is still willing to wait, re-measured per attempt.
        let deadline_ms = match deadline {
            None => 0,
            Some(dl) => {
                let rem = dl.saturating_duration_since(Instant::now());
                if rem.is_zero() {
                    return Err(WireError::DeadlineExceeded);
                }
                u32::try_from(rem.as_millis()).unwrap_or(u32::MAX).max(1)
            }
        };
        let io_timeout = self.io_timeout;
        let stream = self.ensure_stream()?;
        if deadline.is_some() {
            // Never wait on the socket past the budget, even when the
            // configured i/o timeout is longer (or absent).
            let budget = Duration::from_millis(u64::from(deadline_ms)).max(MIN_SOCKET_WAIT);
            let capped = io_timeout.map_or(budget, |t| t.min(budget));
            stream.set_read_timeout(Some(capped))?;
            stream.set_write_timeout(Some(capped))?;
        } else {
            // Undo any budget-derived cap a previous call left behind.
            stream.set_read_timeout(nonzero(io_timeout))?;
            stream.set_write_timeout(nonzero(io_timeout))?;
        }
        write_frame_traced(stream, id, opcode, deadline_ms, trace_id, &payload)?;
        loop {
            let (reply_id, op, body) = read_frame(stream)?;
            // A sync client has exactly one request outstanding; anything
            // else (e.g. an id-0 framing report) ends the exchange.
            if reply_id == id || reply_id == 0 {
                return Reply::decode(op, &body);
            }
        }
    }

    /// Sends one request and reads its reply, reconnecting and retrying
    /// once on a transport failure, and retrying up to
    /// [`with_busy_retries`](ServeClient::with_busy_retries) further
    /// times (with linear backoff) when the server answers `Busy`.
    /// Under a [`with_deadline`](ServeClient::with_deadline) budget the
    /// retries stop — and the call fails with
    /// [`WireError::DeadlineExceeded`] — as soon as the budget is gone.
    ///
    /// # Errors
    ///
    /// The final [`WireError`] after the retries; a `Busy` reply that
    /// outlives every retry is returned as-is for the typed helpers to
    /// surface as [`WireError::Busy`].
    pub fn call(&mut self, request: &Request) -> Result<Reply, WireError> {
        let deadline = self.deadline.map(|budget| Instant::now() + budget);
        // One id per *call*, not per attempt: every retry of this
        // request shows up in the server's traces under the same id.
        let trace_id = self
            .pinned_trace_id
            .unwrap_or_else(hammer_obs::gen_trace_id);
        self.last_trace_id = trace_id;
        let mut busy_attempts = 0u32;
        loop {
            let id = self.next_id;
            self.next_id += 1;
            let result = match self.call_once(id, request, deadline, trace_id) {
                Err(WireError::Io(e)) => {
                    // Out of budget is a final verdict, not a dead
                    // connection; everything else (server restart, idle
                    // timeout…) gets one rebuild-and-retry of the
                    // idempotent request. A timed-out socket may hold a
                    // half-read reply, so it must be rebuilt too.
                    let timed_out = matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    self.stream = None;
                    if timed_out && deadline.is_some_and(|dl| Instant::now() >= dl) {
                        return Err(WireError::DeadlineExceeded);
                    }
                    self.call_once(id, request, deadline, trace_id)
                }
                Ok(Reply::ShuttingDown) => {
                    // The server said, in-band, that it is going away: a
                    // replacement may already own the address. Rebuild
                    // the connection once and re-ask; if nothing answers
                    // there (yet), the honest verdict is still
                    // `ShuttingDown`, not a transport error.
                    self.stream = None;
                    match self.call_once(id, request, deadline, trace_id) {
                        Err(WireError::Io(_)) => Ok(Reply::ShuttingDown),
                        other => other,
                    }
                }
                other => other,
            };
            match result {
                Ok(Reply::Busy) if busy_attempts < self.busy_retries => {
                    // Backpressure is transient: give the admission
                    // queue `i × backoff` to drain, then re-ask — unless
                    // the wait would outlive the budget.
                    busy_attempts += 1;
                    let backoff = self.busy_backoff * busy_attempts;
                    if let Some(dl) = deadline {
                        if Instant::now() + backoff >= dl {
                            return Err(WireError::DeadlineExceeded);
                        }
                    }
                    std::thread::sleep(backoff);
                }
                other => return other,
            }
        }
    }

    /// In-band replies that abort a typed helper.
    fn unexpected(reply: Reply) -> WireError {
        match reply {
            Reply::Busy => WireError::Busy,
            Reply::DeadlineExceeded => WireError::DeadlineExceeded,
            Reply::ShuttingDown => WireError::ShuttingDown,
            Reply::Error(msg) => WireError::Remote(msg),
            other => WireError::UnexpectedReply(other.opcode()),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn ping(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Reconstructs a measured histogram on the server.
    ///
    /// # Errors
    ///
    /// [`WireError::Busy`] under backpressure, [`WireError::Remote`]
    /// on a server-side failure, transport/protocol failures otherwise.
    pub fn reconstruct(
        &mut self,
        counts: &Counts,
        config: &HammerConfig,
    ) -> Result<Distribution, WireError> {
        self.reconstruct_flagged(counts, config).map(|(d, _)| d)
    }

    /// [`reconstruct`](ServeClient::reconstruct), also reporting whether
    /// the server took the degraded (ANN-approximate) path under load —
    /// `true` means the distribution is approximate.
    ///
    /// # Errors
    ///
    /// As for [`reconstruct`](ServeClient::reconstruct).
    pub fn reconstruct_flagged(
        &mut self,
        counts: &Counts,
        config: &HammerConfig,
    ) -> Result<(Distribution, bool), WireError> {
        let request = Request::Reconstruct {
            config: *config,
            counts: counts.clone(),
        };
        match self.call(&request)? {
            Reply::Distribution(d) => Ok((d, false)),
            Reply::ApproxDistribution(d) => Ok((d, true)),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Scores a distribution against a correct-outcome set.
    ///
    /// # Errors
    ///
    /// As for [`reconstruct`](ServeClient::reconstruct).
    pub fn metrics(
        &mut self,
        dist: &Distribution,
        correct: &[BitString],
    ) -> Result<MetricsReply, WireError> {
        // Outcome widths are implicit on the wire (the distribution's
        // width governs the limb layout), so a mismatch must be caught
        // here — encoding it would silently reinterpret the bits.
        if let Some(bad) = correct.iter().find(|x| x.len() != dist.n_bits()) {
            return Err(WireError::Malformed(format!(
                "correct outcome width {} does not match distribution width {}",
                bad.len(),
                dist.n_bits()
            )));
        }
        let request = Request::Metrics {
            dist: dist.clone(),
            correct: correct.to_vec(),
        };
        match self.call(&request)? {
            Reply::Metrics(m) => Ok(m),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Runs the full simulate-then-reconstruct pipeline on the server.
    ///
    /// # Errors
    ///
    /// As for [`reconstruct`](ServeClient::reconstruct).
    pub fn sample_and_reconstruct(&mut self, job: &SampleJob) -> Result<Distribution, WireError> {
        match self.call(&Request::SampleAndReconstruct(job.clone()))? {
            Reply::Distribution(d) | Reply::ApproxDistribution(d) => Ok(d),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Snapshots the serving counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<ServeStats, WireError> {
        match self.call(&Request::Stats)? {
            Reply::Stats(s) => Ok(s),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Drains the server's slow-request trace ring: span trees of every
    /// request that crossed the configured slow threshold (or missed
    /// its deadline) since the last dump. Draining is destructive —
    /// two monitors polling one server split the traces between them.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn trace_dump(&mut self) -> Result<Vec<TraceDumpEntry>, WireError> {
        match self.call(&Request::TraceDump)? {
            Reply::TraceDump(entries) => Ok(entries),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Snapshots every registered metric series (counters, gauges and
    /// latency histograms; server-local merged with process-global).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics_snapshot(&mut self) -> Result<hammer_obs::MetricsSnapshot, WireError> {
        match self.call(&Request::MetricsSnapshot)? {
            Reply::MetricsSnapshot(snap) => Ok(snap),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Requests graceful shutdown.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.call(&Request::Shutdown)? {
            Reply::ShutdownAck => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }
}

//! A crash-safe, append-only segment store for reconstructed
//! [`Distribution`]s — the spill tier under the sharded LRU cache.
//!
//! Reconstruction is the expensive step this whole stack exists to
//! serve; a process restart that wipes the in-RAM cache silently
//! converts cheap hits back into that compute bill for every hot
//! fingerprint. The store makes eviction a demotion instead of a loss:
//! the cache spills evicted entries here, misses probe here before
//! computing, and a restart over the same directory serves warm.
//!
//! # On-disk format
//!
//! A store directory holds numbered segment files (`seg-NNNNNNNN.log`),
//! each a sequence of self-delimiting records:
//!
//! ```text
//! u32 magic "HSR1" | u32 body_len | u32 crc32(body) | body
//! body = u64 key | u8 flags | distribution payload
//! ```
//!
//! The distribution payload is exactly the wire codec's SoA layout
//! ([`crate::codec::put_distribution`]): `u16 n_bits, u32 len,
//! keys[len], (keys_hi[len] if wide), probs[len]` — probabilities as
//! IEEE-754 bit patterns, so a round trip is byte-identical. Records
//! are appended to the active (highest-numbered) segment and fsync'd
//! before [`spill`](DistStore::spill) returns: a record whose spill
//! completed is *committed* and survives any crash.
//!
//! # Recovery
//!
//! [`DistStore::open`] scans every segment in id order: a record with a
//! good magic, plausible length and matching CRC is indexed (later
//! records supersede earlier ones for the same key); a record whose CRC
//! mismatches is skipped (counted, never fatal); a torn tail — EOF or
//! garbage mid-record, the signature of a crash mid-append — truncates
//! the segment at the last good record. Decoding is deferred to load
//! time and goes through [`Distribution::from_raw_parts`], which
//! re-validates every invariant, so even a CRC collision on hostile
//! bytes can produce a dropped record, never a panic or a wrong
//! distribution. A damaged or missing store degrades to cold-cache
//! operation; it never refuses a start.
//!
//! # Budget
//!
//! The store is bounded by a byte budget. The active segment rotates at
//! a fraction of the budget; when the total on-disk footprint exceeds
//! the budget, the oldest closed segment is retired — its live records
//! (still pointed at by the key directory) are rewritten verbatim into
//! the active segment when they are the minority, or dropped outright
//! (a disk-tier eviction) when rewriting would not reclaim much.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use hammer_dist::Distribution;

use crate::codec;

/// Record flag bit: the distribution was computed by the degraded
/// (ANN-approximate) path. Belt and braces — approximate results
/// already live under their own key namespace — but the flag travels
/// with the record so a corrupted directory can never promote an
/// approximate answer to an exact one.
pub const FLAG_APPROX: u8 = 1;

/// Every flag bit the current format defines; anything else on disk is
/// corruption.
const KNOWN_FLAGS: u8 = FLAG_APPROX;

/// Per-record magic: "HSR1".
const RECORD_MAGIC: u32 = u32::from_le_bytes(*b"HSR1");

/// Fixed bytes before the body: magic + body_len + crc.
const RECORD_HEADER: usize = 12;

/// Upper bound on a record body — matches the wire protocol's payload
/// cap, plus the key/flags prefix. A length field beyond this is
/// corruption, not a huge record.
const MAX_BODY: usize = 64 * 1024 * 1024 + 16;

/// Counters the `Stats` opcode surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended (cache evictions demoted to disk).
    pub spills: u64,
    /// Misses served from the store instead of recomputing.
    pub loads: u64,
    /// Records recovered into the directory at the last open.
    pub recovered: u64,
    /// Records dropped as corrupt — bad CRC, torn tail, undecodable
    /// payload — across recovery and loads.
    pub corrupt_dropped: u64,
}

/// Where one committed record lives. Flags live in the record itself
/// and are re-verified on every load, so the directory doesn't copy
/// them.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    segment: u64,
    offset: u64,
    /// Total record length on disk (header + body).
    len: u32,
}

/// Per-segment accounting.
#[derive(Debug, Clone, Copy, Default)]
struct SegmentMeta {
    /// File size in bytes (after any recovery truncation).
    bytes: u64,
    /// Bytes of records the directory still points at.
    live: u64,
}

struct StoreInner {
    dir: PathBuf,
    budget: u64,
    segment_target: u64,
    active_id: u64,
    active: File,
    segments: BTreeMap<u64, SegmentMeta>,
    index: HashMap<u64, IndexEntry>,
}

/// The crash-safe persistent distribution store. All methods take
/// `&self`; internal state is behind one mutex (spills and loads are
/// the cache's *miss* path — contention is not a concern there).
pub struct DistStore {
    inner: Mutex<StoreInner>,
    spills: hammer_obs::Counter,
    loads: hammer_obs::Counter,
    recovered: hammer_obs::Counter,
    corrupt_dropped: hammer_obs::Counter,
}

impl DistStore {
    /// Opens (creating if needed) a store bounded by `budget_bytes`,
    /// running recovery over whatever the directory holds: torn tails
    /// are truncated, corrupt records skipped and counted, and the key
    /// directory rebuilt from the surviving records. Counters are
    /// detached; see [`DistStore::open_registered`] for the
    /// metrics-visible variant.
    ///
    /// # Errors
    ///
    /// Only hard environment failures (the directory cannot be created
    /// or a segment cannot be opened for append) — data damage is
    /// *recovered from*, never an error. Callers treat an error as
    /// "run without a store".
    pub fn open(dir: &Path, budget_bytes: u64) -> std::io::Result<Self> {
        Self::open_with_counters(dir, budget_bytes, None)
    }

    /// [`DistStore::open`], with the counters registered on `registry`
    /// as `serve.store.{spills,loads,recovered,corrupt_dropped}`.
    /// Registration happens before recovery runs so recovery tallies
    /// are never lost.
    ///
    /// # Errors
    ///
    /// See [`DistStore::open`].
    pub fn open_registered(
        dir: &Path,
        budget_bytes: u64,
        registry: &hammer_obs::Registry,
    ) -> std::io::Result<Self> {
        Self::open_with_counters(dir, budget_bytes, Some(registry))
    }

    fn open_with_counters(
        dir: &Path,
        budget_bytes: u64,
        registry: Option<&hammer_obs::Registry>,
    ) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let budget = budget_bytes.max(1);
        let counter =
            |name: &str| registry.map_or_else(hammer_obs::Counter::detached, |r| r.counter(name));
        let store = Self {
            inner: Mutex::new(StoreInner {
                dir: dir.to_path_buf(),
                budget,
                segment_target: (budget / 4).max(4096),
                active_id: 0,
                active: File::create(dir.join("seg-tmp-bootstrap"))?,
                segments: BTreeMap::new(),
                index: HashMap::new(),
            }),
            spills: counter("serve.store.spills"),
            loads: counter("serve.store.loads"),
            recovered: counter("serve.store.recovered"),
            corrupt_dropped: counter("serve.store.corrupt_dropped"),
        };
        let _ = fs::remove_file(dir.join("seg-tmp-bootstrap"));
        store.recover()?;
        Ok(store)
    }

    /// A counters snapshot.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            spills: self.spills.get(),
            loads: self.loads.get(),
            recovered: self.recovered.get(),
            corrupt_dropped: self.corrupt_dropped.get(),
        }
    }

    /// Appends one committed record: serialized, CRC'd, written and
    /// fsync'd before returning. On success the record is durable
    /// against any crash.
    ///
    /// # Errors
    ///
    /// I/O failures of the underlying filesystem. The caller (the
    /// serving runtime) treats them as "this entry was not demoted" —
    /// the in-RAM result is unaffected.
    pub fn spill(&self, key: u64, flags: u8, d: &Distribution) -> std::io::Result<()> {
        let record = encode_record(key, flags, d);
        let mut inner = self.inner.lock().expect("store mutex unpoisoned");
        let inner = &mut *inner;
        if inner.segment_bytes(inner.active_id) >= inner.segment_target {
            inner.rotate()?;
        }
        let offset = inner.active.seek(SeekFrom::End(0))?;
        // Two-phase write with a fault point in between: the chaos
        // drills abort here to manufacture a torn tail exactly where a
        // real crash mid-append would leave one.
        inner.active.write_all(&record[..RECORD_HEADER])?;
        #[cfg(feature = "fault-points")]
        crate::fault::on_store_append();
        inner.active.write_all(&record[RECORD_HEADER..])?;
        #[cfg(feature = "fault-points")]
        crate::fault::on_store_fsync();
        inner.active.sync_data()?;
        let len = record.len() as u64;
        let entry = IndexEntry {
            segment: inner.active_id,
            offset,
            len: record.len() as u32,
        };
        let meta = inner.segments.entry(inner.active_id).or_default();
        meta.bytes = offset + len;
        meta.live += len;
        if let Some(old) = inner.index.insert(key, entry) {
            inner.retire(old);
        }
        self.spills.inc();
        inner.enforce_budget();
        Ok(())
    }

    /// Loads a committed record, re-verifying the CRC and re-validating
    /// the distribution through [`Distribution::from_raw_parts`]. The
    /// record's flags must match `flags` exactly — a mismatch (e.g. an
    /// approximate record under an exact key) is treated as corruption
    /// and dropped, never served.
    #[must_use]
    pub fn load(&self, key: u64, flags: u8) -> Option<Distribution> {
        let mut inner = self.inner.lock().expect("store mutex unpoisoned");
        let entry = *inner.index.get(&key)?;
        match inner.read_record(entry) {
            Some((stored_key, stored_flags, d)) if stored_key == key && stored_flags == flags => {
                self.loads.inc();
                Some(d)
            }
            _ => {
                // Bad bytes under a directory entry: drop the entry so
                // the caller recomputes (and the record dies at the
                // next compaction).
                inner.drop_entry(key);
                self.corrupt_dropped.inc();
                None
            }
        }
    }

    /// Entries currently committed and indexed (tests + diagnostics).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("store mutex unpoisoned")
            .index
            .len()
    }

    /// Whether the directory is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans every segment, truncating torn tails and rebuilding the
    /// key directory; then opens the active segment for append.
    fn recover(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().expect("store mutex unpoisoned");
        let mut ids: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&inner.dir)? {
            let Ok(entry) = entry else { continue };
            if let Some(id) = segment_id(&entry.file_name().to_string_lossy()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        let mut corrupt = 0u64;
        for &id in &ids {
            let path = segment_path(&inner.dir, id);
            let Ok(bytes) = fs::read(&path) else {
                // An unreadable segment is damage, not a refused start.
                corrupt += 1;
                continue;
            };
            let scan = scan_segment(&bytes);
            corrupt += scan.corrupt;
            if (scan.valid_bytes as usize) < bytes.len() {
                // Torn or garbage tail: truncate to the last good
                // record so the next append starts at a clean offset.
                if let Ok(f) = OpenOptions::new().write(true).open(&path) {
                    if f.set_len(scan.valid_bytes).is_ok() {
                        let _ = f.sync_data();
                    }
                }
                #[cfg(feature = "fault-points")]
                crate::fault::on_recovery_truncate();
            }
            // Meta goes in before the record walk so that supersedes —
            // including intra-segment ones — can retire the old record
            // against an existing entry.
            inner.segments.insert(
                id,
                SegmentMeta {
                    bytes: scan.valid_bytes,
                    live: 0,
                },
            );
            for (key, _flags, offset, len) in scan.records {
                let entry = IndexEntry {
                    segment: id,
                    offset,
                    len,
                };
                if let Some(meta) = inner.segments.get_mut(&id) {
                    meta.live += u64::from(len);
                }
                if let Some(old) = inner.index.insert(key, entry) {
                    inner.retire(old);
                }
            }
        }
        let active_id = ids.last().copied().unwrap_or(0).max(1);
        inner.active_id = active_id;
        let path = segment_path(&inner.dir, active_id);
        inner.active = OpenOptions::new().create(true).append(true).open(path)?;
        inner.segments.entry(active_id).or_default();
        self.recovered.add(inner.index.len() as u64);
        self.corrupt_dropped.add(corrupt);
        inner.enforce_budget();
        Ok(())
    }
}

impl StoreInner {
    fn segment_bytes(&self, id: u64) -> u64 {
        self.segments.get(&id).map_or(0, |m| m.bytes)
    }

    /// Closes the active segment and starts the next one.
    fn rotate(&mut self) -> std::io::Result<()> {
        self.active.sync_data()?;
        self.active_id += 1;
        let path = segment_path(&self.dir, self.active_id);
        self.active = OpenOptions::new().create(true).append(true).open(path)?;
        self.segments.entry(self.active_id).or_default();
        Ok(())
    }

    /// Subtracts a superseded or dropped record from its segment's
    /// live accounting.
    fn retire(&mut self, entry: IndexEntry) {
        if let Some(meta) = self.segments.get_mut(&entry.segment) {
            meta.live = meta.live.saturating_sub(u64::from(entry.len));
        }
    }

    fn drop_entry(&mut self, key: u64) {
        if let Some(entry) = self.index.remove(&key) {
            self.retire(entry);
        }
    }

    fn total_bytes(&self) -> u64 {
        self.segments.values().map(|m| m.bytes).sum()
    }

    /// Reads and fully re-verifies one record.
    fn read_record(&mut self, entry: IndexEntry) -> Option<(u64, u8, Distribution)> {
        let path = segment_path(&self.dir, entry.segment);
        let mut f = File::open(path).ok()?;
        f.seek(SeekFrom::Start(entry.offset)).ok()?;
        let mut buf = vec![0u8; entry.len as usize];
        f.read_exact(&mut buf).ok()?;
        decode_record(&buf)
    }

    /// Retires the oldest closed segments until the footprint fits the
    /// budget. Minority-live segments have their live records rewritten
    /// (verbatim bytes, CRC intact) into the active segment; majority-
    /// live ones are dropped whole — a disk-tier eviction of the
    /// coldest data.
    fn enforce_budget(&mut self) {
        while self.total_bytes() > self.budget {
            let Some((&oldest, &meta)) = self.segments.iter().find(|(&id, _)| id != self.active_id)
            else {
                return; // only the active segment left; let it be
            };
            let path = segment_path(&self.dir, oldest);
            if meta.live * 2 <= meta.bytes {
                // Mostly dead: rewriting the live minority reclaims the
                // dead majority.
                if self.rewrite_live(oldest, &path).is_err() {
                    // Could not preserve the live records; dropping the
                    // segment anyway would lose them, so leave it and
                    // stop compacting this round.
                    return;
                }
            } else {
                // Mostly live: rewriting reclaims little, so evict.
                self.index.retain(|_, e| e.segment != oldest);
            }
            self.segments.remove(&oldest);
            let _ = fs::remove_file(&path);
        }
    }

    /// Re-appends the live records of segment `id` to the active
    /// segment (verbatim — the CRC'd bytes move unchanged) and
    /// re-points their index entries.
    fn rewrite_live(&mut self, id: u64, path: &Path) -> std::io::Result<()> {
        let bytes = fs::read(path)?;
        let live: Vec<(u64, IndexEntry)> = self
            .index
            .iter()
            .filter(|(_, e)| e.segment == id)
            .map(|(&k, &e)| (k, e))
            .collect();
        for (key, entry) in live {
            let start = entry.offset as usize;
            let end = start + entry.len as usize;
            let Some(record) = bytes.get(start..end) else {
                continue; // stale entry; drop it below by retain
            };
            let offset = self.active.seek(SeekFrom::End(0))?;
            self.active.write_all(record)?;
            let meta = self.segments.entry(self.active_id).or_default();
            meta.bytes = offset + entry.len as u64;
            meta.live += u64::from(entry.len);
            self.index.insert(
                key,
                IndexEntry {
                    segment: self.active_id,
                    offset,
                    ..entry
                },
            );
        }
        // The moved records must be durable before the source file can
        // be deleted.
        self.active.sync_data()?;
        self.index.retain(|_, e| e.segment != id);
        Ok(())
    }
}

/// `seg-NNNNNNNN.log` for segment `id`.
fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.log"))
}

/// Parses a segment file name back to its id.
fn segment_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    rest.parse().ok()
}

/// Serializes one record: header (magic, body length, CRC) + body
/// (key, flags, distribution payload in the wire codec's SoA layout).
#[must_use]
pub fn encode_record(key: u64, flags: u8, d: &Distribution) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + d.len() * 24);
    body.extend_from_slice(&key.to_le_bytes());
    body.push(flags);
    codec::put_distribution(&mut body, d);
    let mut out = Vec::with_capacity(RECORD_HEADER + body.len());
    out.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes and fully validates one record's bytes: magic, length, CRC,
/// known flags, and the distribution itself (via
/// [`Distribution::from_raw_parts`]). `None` on any violation — hostile
/// bytes can never panic or produce an invalid distribution.
#[must_use]
pub fn decode_record(buf: &[u8]) -> Option<(u64, u8, Distribution)> {
    let (key, flags, body_len) = record_header(buf)?;
    if RECORD_HEADER + body_len != buf.len() {
        return None;
    }
    let payload = &buf[RECORD_HEADER + 9..];
    let d = codec::read_distribution(payload).ok()?;
    Some((key, flags, d))
}

/// Validates a record prefix (magic, plausible length, CRC over the
/// body, known flags) without decoding the distribution. Returns
/// `(key, flags, body_len)`.
fn record_header(buf: &[u8]) -> Option<(u64, u8, usize)> {
    let magic = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?);
    if magic != RECORD_MAGIC {
        return None;
    }
    let body_len = u32::from_le_bytes(buf.get(4..8)?.try_into().ok()?) as usize;
    if !(9..=MAX_BODY).contains(&body_len) {
        return None;
    }
    let crc = u32::from_le_bytes(buf.get(8..12)?.try_into().ok()?);
    let body = buf.get(RECORD_HEADER..RECORD_HEADER + body_len)?;
    if crc32(body) != crc {
        return None;
    }
    let key = u64::from_le_bytes(body[0..8].try_into().ok()?);
    let flags = body[8];
    if flags & !KNOWN_FLAGS != 0 {
        return None;
    }
    Some((key, flags, body_len))
}

/// What scanning one segment found.
struct SegmentScan {
    /// `(key, flags, offset, record_len)` of every valid record, in
    /// file order.
    records: Vec<(u64, u8, u64, u32)>,
    /// Offset of the first byte past the last structurally-sound
    /// record; everything after is a torn or garbage tail.
    valid_bytes: u64,
    /// Records (or tails) dropped as corrupt.
    corrupt: u64,
}

/// Walks a segment's bytes record by record. A bad CRC under a sound
/// frame skips just that record; a bad magic or impossible length means
/// the walk has lost sync (or hit a torn tail) — everything from there
/// on is dropped.
fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut corrupt = 0u64;
    let mut pos = 0usize;
    let mut valid = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER {
            corrupt += 1; // torn mid-header
            break;
        }
        let magic = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let body_len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
        if magic != RECORD_MAGIC || !(9..=MAX_BODY).contains(&body_len) {
            corrupt += 1; // lost sync: garbage or a torn length field
            break;
        }
        if rest.len() < RECORD_HEADER + body_len {
            corrupt += 1; // torn mid-body (crash between write and fsync)
            break;
        }
        let record = &rest[..RECORD_HEADER + body_len];
        match record_header(record) {
            Some((key, flags, _)) => {
                records.push((key, flags, pos as u64, record.len() as u32));
            }
            None => corrupt += 1, // CRC mismatch: skip, stay in sync
        }
        pos += RECORD_HEADER + body_len;
        valid = pos;
    }
    SegmentScan {
        records,
        valid_bytes: valid as u64,
        corrupt,
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven; the workspace vendors
/// no checksum crate, and 20 lines beat a dependency.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    static TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_dist::BitString;

    fn dist(tag: u64, n: usize) -> Distribution {
        let pairs: Vec<(BitString, f64)> = (0..n as u64)
            .map(|i| (BitString::new((tag.wrapping_mul(31) + i) % 256, 8), 1.0))
            .collect();
        Distribution::from_probs(8, pairs).expect("positive weights")
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hammer-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_round_trips() {
        let d = dist(7, 5);
        let record = encode_record(42, FLAG_APPROX, &d);
        let (key, flags, back) = decode_record(&record).expect("round trip");
        assert_eq!((key, flags), (42, FLAG_APPROX));
        assert_eq!(back, d);
        // Re-encoding reproduces the bytes exactly.
        assert_eq!(encode_record(key, flags, &back), record);
    }

    #[test]
    fn spill_load_and_warm_restart() {
        let dir = tmp_dir("warm");
        let store = DistStore::open(&dir, 1 << 20).expect("open");
        for i in 0..10u64 {
            store.spill(i, 0, &dist(i, 4)).expect("spill");
        }
        assert_eq!(store.load(3, 0).expect("hit"), dist(3, 4));
        assert!(store.load(99, 0).is_none());
        drop(store);
        // Restart over the same directory: everything committed is back.
        let warm = DistStore::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(warm.stats().recovered, 10);
        for i in 0..10u64 {
            assert_eq!(warm.load(i, 0).expect("recovered"), dist(i, 4));
        }
        assert_eq!(warm.stats().corrupt_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flag_mismatch_is_dropped_not_served() {
        let dir = tmp_dir("flags");
        let store = DistStore::open(&dir, 1 << 20).expect("open");
        store.spill(5, FLAG_APPROX, &dist(5, 4)).expect("spill");
        // Asking for the exact flavor of an approximate record must
        // never serve it.
        assert!(store.load(5, 0).is_none());
        assert_eq!(store.stats().corrupt_dropped, 1);
        assert!(store.load(5, FLAG_APPROX).is_none(), "entry dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn supersede_keeps_the_latest_record() {
        let dir = tmp_dir("supersede");
        let store = DistStore::open(&dir, 1 << 20).expect("open");
        store.spill(1, 0, &dist(1, 4)).expect("spill");
        store.spill(1, 0, &dist(2, 4)).expect("spill");
        assert_eq!(store.load(1, 0).expect("hit"), dist(2, 4));
        drop(store);
        let warm = DistStore::open(&dir, 1 << 20).expect("reopen");
        assert_eq!(warm.stats().recovered, 1);
        assert_eq!(warm.load(1, 0).expect("recovered"), dist(2, 4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_rotation_and_compaction_bound_the_footprint() {
        let dir = tmp_dir("budget");
        let budget = 64 * 1024u64;
        let store = DistStore::open(&dir, budget).expect("open");
        // Far more data than the budget: ~200 records × ~1.3 KB.
        for i in 0..200u64 {
            store.spill(i, 0, &dist(i, 50)).expect("spill");
        }
        let on_disk: u64 = fs::read_dir(&dir)
            .expect("dir")
            .filter_map(Result::ok)
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum();
        // The active segment may overshoot transiently, but the total
        // stays within budget + one segment target.
        assert!(
            on_disk <= budget + budget / 4 + 4096,
            "footprint {on_disk} vs budget {budget}"
        );
        // The newest records survive; the oldest were evicted.
        assert_eq!(store.load(199, 0).expect("newest"), dist(199, 50));
        assert!(store.load(0, 0).is_none(), "oldest evicted from disk");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_dead_records_and_keeps_live_ones() {
        let dir = tmp_dir("compact");
        let budget = 48 * 1024u64;
        let store = DistStore::open(&dir, budget).expect("open");
        // Overwrite one hot key many times (dead records pile up) while
        // a few cold keys stay live.
        for i in 0..8u64 {
            store.spill(1000 + i, 0, &dist(i, 40)).expect("spill");
        }
        for round in 0..120u64 {
            store.spill(7, 0, &dist(round, 40)).expect("spill");
        }
        assert_eq!(store.load(7, 0).expect("hot key live"), dist(119, 40));
        // A store dominated by one key must keep its footprint near one
        // record, not 120.
        drop(store);
        let warm = DistStore::open(&dir, budget).expect("reopen");
        assert_eq!(warm.load(7, 0).expect("hot key recovered"), dist(119, 40));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_earlier_records_survive() {
        let dir = tmp_dir("torn");
        let store = DistStore::open(&dir, 1 << 20).expect("open");
        for i in 0..5u64 {
            store.spill(i, 0, &dist(i, 4)).expect("spill");
        }
        drop(store);
        // Simulate a crash mid-append: a half-written record at the
        // tail of the active segment.
        let path = segment_path(&dir, 1);
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        let torn = encode_record(99, 0, &dist(99, 4));
        f.write_all(&torn[..torn.len() / 2]).expect("half write");
        drop(f);
        let len_with_tear = fs::metadata(&path).expect("meta").len();
        let warm = DistStore::open(&dir, 1 << 20).expect("recover");
        assert_eq!(warm.stats().recovered, 5);
        assert_eq!(warm.stats().corrupt_dropped, 1);
        for i in 0..5u64 {
            assert_eq!(warm.load(i, 0).expect("survivor"), dist(i, 4));
        }
        assert!(warm.load(99, 0).is_none());
        assert!(
            fs::metadata(&path).expect("meta").len() < len_with_tear,
            "tail truncated"
        );
        // Recovery is idempotent: a second open finds a clean store.
        drop(warm);
        let again = DistStore::open(&dir, 1 << 20).expect("recover twice");
        assert_eq!(again.stats().recovered, 5);
        assert_eq!(again.stats().corrupt_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_skips_one_record_and_keeps_sync() {
        let dir = tmp_dir("bitflip");
        let store = DistStore::open(&dir, 1 << 20).expect("open");
        for i in 0..3u64 {
            store.spill(i, 0, &dist(i, 4)).expect("spill");
        }
        drop(store);
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).expect("read");
        // Flip one byte inside the SECOND record's body (past its
        // header) so the frame stays sound but the CRC fails.
        let rec_len = encode_record(0, 0, &dist(0, 4)).len();
        bytes[rec_len + RECORD_HEADER + 12] ^= 0x40;
        fs::write(&path, &bytes).expect("write corrupted");
        let warm = DistStore::open(&dir, 1 << 20).expect("recover");
        assert_eq!(warm.stats().recovered, 2, "records 0 and 2 survive");
        assert_eq!(warm.stats().corrupt_dropped, 1);
        assert_eq!(warm.load(0, 0).expect("first"), dist(0, 4));
        assert!(warm.load(1, 0).is_none(), "corrupted record dropped");
        assert_eq!(warm.load(2, 0).expect("third"), dist(2, 4));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_missing_directories_open_cold() {
        let dir = tmp_dir("cold");
        let store = DistStore::open(&dir, 1 << 20).expect("open missing dir");
        assert!(store.is_empty());
        assert_eq!(store.stats().recovered, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

//! A fault-injecting TCP proxy for chaos-testing the serving tier.
//!
//! [`ChaosProxy`] sits between a client and a real server and mangles
//! the byte stream according to a per-connection [`Fault`] schedule:
//! added latency, dropped or truncated streams, flipped bytes,
//! half-closed sockets. The chaos suite drives clients through it and
//! asserts the *server-side* invariants — no deadlock, no panic escape,
//! no stuck follower, byte-identical replies for whatever completes —
//! while the proxy plays the hostile network.
//!
//! The proxy is deliberately dumb: it neither parses frames nor knows
//! the protocol, so every fault it injects is one the real world can
//! produce (a NAT timeout, a dying switch, a buggy middlebox).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the proxy does to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass bytes through untouched.
    None,
    /// Delay every request-direction chunk by this many milliseconds
    /// (a slow, but honest, network).
    DelayMs(u64),
    /// Forward only the first `n` request bytes, then go silent while
    /// holding the connection open (slow-loris from the server's view).
    DropRequestAfter(usize),
    /// Forward only the first `n` reply bytes, then sever both sides
    /// (the client sees a truncated reply).
    TruncateReplyAfter(usize),
    /// Flip the byte at request offset `n` (header or payload
    /// corruption, depending on `n`).
    CorruptRequestByte(usize),
    /// Forward the first `n` request bytes, then half-close the
    /// client→server direction (FIN with the reply path still open).
    HalfCloseRequestAfter(usize),
}

/// A running chaos proxy; dropping it severs every proxied connection.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream`. Connection `i` (0-based, in accept order) gets
    /// `schedule[i % schedule.len()]`; an empty schedule means
    /// [`Fault::None`] for everyone.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, schedule: Vec<Fault>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        // Polling accept so `stop` is honored promptly.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::Builder::new()
                .name("chaos-proxy-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                let n = accepted.fetch_add(1, Ordering::SeqCst);
                                let fault = if schedule.is_empty() {
                                    Fault::None
                                } else {
                                    schedule[n % schedule.len()]
                                };
                                let stop = Arc::clone(&stop);
                                let _ = std::thread::Builder::new()
                                    .name("chaos-proxy-conn".into())
                                    .spawn(move || proxy_connection(client, upstream, fault, stop));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("proxy acceptor spawns")
        };
        Ok(Self {
            local_addr,
            stop,
            accepted,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many connections the proxy has accepted so far.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Pumps one proxied connection, applying `fault` to the two
/// directions. Request direction = client→upstream.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault, stop: Arc<AtomicBool>) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    // Short read timeouts keep both pumps responsive to `stop`.
    let tick = Some(Duration::from_millis(20));
    client.set_read_timeout(tick).ok();
    server.set_read_timeout(tick).ok();

    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let request_fault = match fault {
        Fault::TruncateReplyAfter(_) => Fault::None,
        f => f,
    };
    let reply_fault = match fault {
        Fault::TruncateReplyAfter(n) => Fault::TruncateReplyAfter(n),
        Fault::DelayMs(_) => fault, // symmetric latency
        _ => Fault::None,
    };
    let up = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("chaos-pump-up".into())
            .spawn(move || pump(client_r, server, request_fault, true, &stop))
    };
    // Reply direction runs on this thread.
    pump(server_r, client, reply_fault, false, &stop);
    if let Ok(handle) = up {
        let _ = handle.join();
    }
}

/// Copies bytes `src → dst`, applying one fault, until EOF/stop/error.
fn pump(mut src: TcpStream, mut dst: TcpStream, fault: Fault, is_request: bool, stop: &AtomicBool) {
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Propagate the EOF as a half-close, keeping the other
                // direction alive (real TCP semantics).
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let chunk = &mut buf[..n];
        match fault {
            Fault::None => {}
            Fault::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
            Fault::DropRequestAfter(limit) | Fault::TruncateReplyAfter(limit) => {
                if forwarded >= limit {
                    if matches!(fault, Fault::TruncateReplyAfter(_)) {
                        // Sever: the client must see a hard truncation,
                        // not a stall.
                        let _ = dst.shutdown(Shutdown::Both);
                        let _ = src.shutdown(Shutdown::Both);
                        return;
                    }
                    // Drop: swallow bytes silently, keep the socket up.
                    forwarded += n;
                    continue;
                }
                let allowed = (limit - forwarded).min(n);
                if write_all(&mut dst, &chunk[..allowed]).is_err() {
                    return;
                }
                forwarded += n;
                if matches!(fault, Fault::TruncateReplyAfter(_)) && forwarded >= limit {
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                continue;
            }
            Fault::CorruptRequestByte(offset) => {
                if is_request && (forwarded..forwarded + n).contains(&offset) {
                    chunk[offset - forwarded] ^= 0xFF;
                }
            }
            Fault::HalfCloseRequestAfter(limit) => {
                if is_request && forwarded + n >= limit {
                    let allowed = limit.saturating_sub(forwarded).min(n);
                    let _ = write_all(&mut dst, &chunk[..allowed]);
                    let _ = dst.shutdown(Shutdown::Write);
                    return;
                }
            }
        }
        if write_all(&mut dst, chunk).is_err() {
            return;
        }
        forwarded += n;
    }
}

fn write_all(dst: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    dst.write_all(bytes)?;
    dst.flush()
}

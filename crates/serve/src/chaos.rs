//! A fault-injecting TCP proxy for chaos-testing the serving tier.
//!
//! [`ChaosProxy`] sits between a client and a real server and mangles
//! the byte stream according to a per-connection [`Fault`] schedule:
//! added latency, dropped or truncated streams, flipped bytes,
//! half-closed sockets. The chaos suite drives clients through it and
//! asserts the *server-side* invariants — no deadlock, no panic escape,
//! no stuck follower, byte-identical replies for whatever completes —
//! while the proxy plays the hostile network.
//!
//! The proxy is deliberately dumb: it neither parses frames nor knows
//! the protocol, so every fault it injects is one the real world can
//! produce (a NAT timeout, a dying switch, a buggy middlebox). The one
//! concession to observability: the trace-id field sits at a fixed
//! offset in every v3 frame header, so the proxy *sniffs* (never
//! decodes) the id of the last request it saw and records it alongside
//! each fault it fires — structured `chaos` events (in the global
//! [`EventLog`]) and [`ChaosProxy::fault_log`] tie an injected fault
//! back to the victim request's server-side trace.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hammer_obs::EventLog;

use crate::protocol::{MAGIC, TRACE_ID_OFFSET, VERSION};

/// Fired faults retained by [`ChaosProxy::fault_log`]. A long chaos
/// soak fires one event per perturbed connection; the ring keeps the
/// latest and counts what it sheds ([`ChaosProxy::faults_dropped`]), so
/// soak memory stays bounded no matter how long the drill runs.
const FAULT_LOG_CAP: usize = 1024;

/// The bounded keep-latest ring behind [`ChaosProxy::fault_log`].
struct FaultLog {
    ring: Mutex<VecDeque<FaultEvent>>,
    dropped: AtomicU64,
}

impl FaultLog {
    fn new() -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, event: FaultEvent) {
        let mut ring = self.ring.lock().expect("fault log unpoisoned");
        if ring.len() == FAULT_LOG_CAP {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

/// What the proxy does to one proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass bytes through untouched.
    None,
    /// Delay every request-direction chunk by this many milliseconds
    /// (a slow, but honest, network).
    DelayMs(u64),
    /// Forward only the first `n` request bytes, then go silent while
    /// holding the connection open (slow-loris from the server's view).
    DropRequestAfter(usize),
    /// Forward only the first `n` reply bytes, then sever both sides
    /// (the client sees a truncated reply).
    TruncateReplyAfter(usize),
    /// Flip the byte at request offset `n` (header or payload
    /// corruption, depending on `n`).
    CorruptRequestByte(usize),
    /// Forward the first `n` request bytes, then half-close the
    /// client→server direction (FIN with the reply path still open).
    HalfCloseRequestAfter(usize),
}

/// One injected fault, recorded the moment it first perturbed traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based accept-order index of the victim connection.
    pub connection: usize,
    /// The fault the schedule assigned to that connection.
    pub fault: Fault,
    /// Trace id of the last v3 request frame the proxy saw on the
    /// victim connection before the fault fired, if it saw one (bare
    /// clients and pre-v3 frames leave this `None`).
    pub trace_id: Option<u64>,
}

/// Per-connection fault bookkeeping, shared by both pump directions.
struct FaultMonitor {
    connection: usize,
    fault: Fault,
    /// Last trace id sniffed from a request-direction chunk (0 = none).
    last_trace: AtomicU64,
    /// Whether this connection's fault has been logged already — each
    /// fault is recorded once, at first effect.
    logged: AtomicBool,
    log: Arc<FaultLog>,
}

impl FaultMonitor {
    /// Remembers the trace id of a request-direction chunk that starts
    /// a v3 frame. A fixed-offset peek, not a protocol decode: the
    /// proxy stays dumb enough that every fault it injects remains one
    /// a real middlebox could produce.
    fn sniff(&self, chunk: &[u8]) {
        if chunk.len() >= TRACE_ID_OFFSET + 8
            && chunk[..MAGIC.len()] == MAGIC
            && chunk[MAGIC.len()..MAGIC.len() + 2] == VERSION.to_le_bytes()
        {
            let mut id = [0u8; 8];
            id.copy_from_slice(&chunk[TRACE_ID_OFFSET..TRACE_ID_OFFSET + 8]);
            self.last_trace
                .store(u64::from_le_bytes(id), Ordering::Relaxed);
        }
    }

    /// Records the fault the first time it actually perturbs traffic.
    fn fired(&self) {
        if self.logged.swap(true, Ordering::SeqCst) {
            return;
        }
        let event = FaultEvent {
            connection: self.connection,
            fault: self.fault,
            trace_id: match self.last_trace.load(Ordering::Relaxed) {
                0 => None,
                id => Some(id),
            },
        };
        EventLog::global()
            .warn("chaos", "fault fired")
            .field("conn", event.connection)
            .field("fault", format!("{:?}", event.fault))
            .trace(event.trace_id.unwrap_or(0));
        self.log.push(event);
    }
}

/// A running chaos proxy; dropping it severs every proxied connection.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    log: Arc<FaultLog>,
    acceptor: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream`. Connection `i` (0-based, in accept order) gets
    /// `schedule[i % schedule.len()]`; an empty schedule means
    /// [`Fault::None`] for everyone.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, schedule: Vec<Fault>) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        // Polling accept so `stop` is honored promptly.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let log = Arc::new(FaultLog::new());
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            let log = Arc::clone(&log);
            std::thread::Builder::new()
                .name("chaos-proxy-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                let n = accepted.fetch_add(1, Ordering::SeqCst);
                                let fault = if schedule.is_empty() {
                                    Fault::None
                                } else {
                                    schedule[n % schedule.len()]
                                };
                                let stop = Arc::clone(&stop);
                                let monitor = Arc::new(FaultMonitor {
                                    connection: n,
                                    fault,
                                    last_trace: AtomicU64::new(0),
                                    logged: AtomicBool::new(false),
                                    log: Arc::clone(&log),
                                });
                                let _ = std::thread::Builder::new()
                                    .name("chaos-proxy-conn".into())
                                    .spawn(move || {
                                        proxy_connection(client, upstream, fault, stop, &monitor);
                                    });
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("proxy acceptor spawns")
        };
        Ok(Self {
            local_addr,
            stop,
            accepted,
            log,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// How many connections the proxy has accepted so far.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// The most recent fired faults — one entry per perturbed
    /// connection, tagged with the victim request's trace id when the
    /// proxy saw one on the wire. Scheduled-but-dormant faults (the
    /// connection never hit the trigger) do not appear, and a soak
    /// that fires more than the ring's capacity keeps only the latest
    /// (see [`faults_dropped`](ChaosProxy::faults_dropped)).
    #[must_use]
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.log
            .ring
            .lock()
            .expect("fault log unpoisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Fired faults evicted from the bounded log so far.
    #[must_use]
    pub fn faults_dropped(&self) -> u64 {
        self.log.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Pumps one proxied connection, applying `fault` to the two
/// directions. Request direction = client→upstream.
fn proxy_connection(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Fault,
    stop: Arc<AtomicBool>,
    monitor: &Arc<FaultMonitor>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();
    // Short read timeouts keep both pumps responsive to `stop`.
    let tick = Some(Duration::from_millis(20));
    client.set_read_timeout(tick).ok();
    server.set_read_timeout(tick).ok();

    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let request_fault = match fault {
        Fault::TruncateReplyAfter(_) => Fault::None,
        f => f,
    };
    let reply_fault = match fault {
        Fault::TruncateReplyAfter(n) => Fault::TruncateReplyAfter(n),
        Fault::DelayMs(_) => fault, // symmetric latency
        _ => Fault::None,
    };
    let up = {
        let stop = Arc::clone(&stop);
        let monitor = Arc::clone(monitor);
        std::thread::Builder::new()
            .name("chaos-pump-up".into())
            .spawn(move || pump(client_r, server, request_fault, true, &stop, &monitor))
    };
    // Reply direction runs on this thread.
    pump(server_r, client, reply_fault, false, &stop, monitor);
    if let Ok(handle) = up {
        let _ = handle.join();
    }
}

/// Copies bytes `src → dst`, applying one fault, until EOF/stop/error.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    fault: Fault,
    is_request: bool,
    stop: &AtomicBool,
    monitor: &FaultMonitor,
) {
    let mut buf = [0u8; 4096];
    let mut forwarded = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Propagate the EOF as a half-close, keeping the other
                // direction alive (real TCP semantics).
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        let chunk = &mut buf[..n];
        // Sniff the victim's trace id before the fault can mangle the
        // chunk, so a corrupted frame still logs its original id.
        if is_request {
            monitor.sniff(chunk);
        }
        match fault {
            Fault::None => {}
            Fault::DelayMs(ms) => {
                monitor.fired();
                std::thread::sleep(Duration::from_millis(ms));
            }
            Fault::DropRequestAfter(limit) | Fault::TruncateReplyAfter(limit) => {
                if forwarded >= limit {
                    monitor.fired();
                    if matches!(fault, Fault::TruncateReplyAfter(_)) {
                        // Sever: the client must see a hard truncation,
                        // not a stall.
                        let _ = dst.shutdown(Shutdown::Both);
                        let _ = src.shutdown(Shutdown::Both);
                        return;
                    }
                    // Drop: swallow bytes silently, keep the socket up.
                    forwarded += n;
                    continue;
                }
                let allowed = (limit - forwarded).min(n);
                if allowed < n {
                    monitor.fired();
                }
                if write_all(&mut dst, &chunk[..allowed]).is_err() {
                    return;
                }
                forwarded += n;
                if matches!(fault, Fault::TruncateReplyAfter(_)) && forwarded >= limit {
                    monitor.fired();
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                continue;
            }
            Fault::CorruptRequestByte(offset) => {
                if is_request && (forwarded..forwarded + n).contains(&offset) {
                    monitor.fired();
                    chunk[offset - forwarded] ^= 0xFF;
                }
            }
            Fault::HalfCloseRequestAfter(limit) => {
                if is_request && forwarded + n >= limit {
                    monitor.fired();
                    let allowed = limit.saturating_sub(forwarded).min(n);
                    let _ = write_all(&mut dst, &chunk[..allowed]);
                    let _ = dst.shutdown(Shutdown::Write);
                    return;
                }
            }
        }
        if write_all(&mut dst, chunk).is_err() {
            return;
        }
        forwarded += n;
    }
}

fn write_all(dst: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    dst.write_all(bytes)?;
    dst.flush()
}

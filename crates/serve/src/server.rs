//! The server runtime: TCP acceptor, per-connection framed
//! reader/writer threads, a bounded worker-pool request queue with
//! `Busy` backpressure, and graceful shutdown that drains in-flight
//! work.
//!
//! # Thread anatomy
//!
//! ```text
//! acceptor ──► per-connection reader ──► request pool (WorkerPool,
//!     │             │    ▲                bounded queue) ──┐
//!     │             │    └── Busy reply when full          │ compute
//!     │             ▼                                      ▼
//!     │        per-connection writer ◄──── mpsc ◄──── reply (id, frame)
//!     └── engine pool (WorkerPool, shared): trial blocks of every
//!         SampleAndReconstruct, amortized across requests
//! ```
//!
//! Two pools on purpose: request jobs block on cache coalescing and on
//! engine fan-out, so running engine trial blocks on the *same* pool
//! could deadlock (every worker waiting on work only that pool could
//! run). The request pool is bounded (backpressure); the engine pool is
//! fed only by request workers, so it needs no bound of its own.
//!
//! # Observability
//!
//! Every server owns a private [`hammer_obs::Registry`] — counters and
//! per-stage latency histograms are exact per instance, so tests can
//! boot several servers in one process and assert on each. Compute
//! requests carry a [`TraceCtx`] from frame arrival to the socket
//! write: each stage (decode, queue wait, cache probe, store load,
//! compute, encode, write) opens a span that lands both in the
//! request's own span list and in the matching stage histogram. Slow
//! requests (and every `DeadlineExceeded`) park their span tree in a
//! bounded ring, drained by the `TraceDump` opcode. Tracing costs one
//! `Instant::now` pair and an atomic add per stage, and the whole
//! span/histogram layer sits behind [`hammer_obs::timing_enabled`];
//! counters stay exact either way.

use std::io::{BufWriter, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hammer_core::{CancelToken, Cancelled, Hammer, NeighborhoodLimit};
use hammer_dist::fingerprint::Fnv1a;
use hammer_dist::{metrics, Distribution};
use hammer_obs::{
    gen_trace_id, Counter, EventLog, Histogram, MetricsSnapshot, Registry, RollupConfig, SloSpec,
    SloStatus, SloTracker, TimeSeries, TraceCtx, TraceRing,
};
use hammer_sim::{AutoEngine, WorkerPool};

use crate::cache::{Claim, ComputeError, ComputeResult, DistCache, InFlight};
use crate::codec::{Reply, Request, SampleJob, ServeStats};
use crate::protocol::{opcode, read_frame_full, write_frame, write_frame_traced, Frame, WireError};
use crate::store::{DistStore, FLAG_APPROX};

/// Graceful-degradation knobs: under queue pressure, large
/// reconstructions fall back to the ANN-approximate scoring path
/// (answered as `ApproxDistribution` so clients can tell) instead of
/// being refused outright. Off by default — exactness is the default
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct DegradeConfig {
    /// Master switch.
    pub enabled: bool,
    /// Queued (not yet running) requests at or above which degradation
    /// kicks in.
    pub queue_threshold: usize,
    /// Minimum support size (distinct outcomes) for a request to be
    /// eligible — small reconstructions are cheap enough to do exactly
    /// even under load.
    pub min_support: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            queue_threshold: 16,
            min_support: 4096,
        }
    }
}

/// Serving configuration (the `repro serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Request-execution workers.
    pub workers: usize,
    /// Queued (not yet running) requests beyond which the server
    /// replies `Busy`.
    pub queue_limit: usize,
    /// Distribution-cache budget in mebibytes.
    pub cache_mb: usize,
    /// Worker threads for the shared engine pool (trial blocks of
    /// `SampleAndReconstruct` jobs).
    pub engine_threads: usize,
    /// Per-connection socket timeout for mid-frame reads and all
    /// writes. A client that starts a frame must finish it within this
    /// window (slow-loris defense); *idle* connections — no frame in
    /// progress — are never timed out. `None` disables.
    pub io_timeout: Option<Duration>,
    /// Concurrent-connection cap; connections over the limit get one
    /// `Busy` frame and are dropped.
    pub max_connections: usize,
    /// Graceful degradation under queue pressure.
    pub degrade: DegradeConfig,
    /// Directory of the persistent spill store (`--store-dir`). `None`
    /// runs without one: evictions are discarded and every restart is
    /// cold. A directory that cannot be opened degrades to the same —
    /// never a refused start.
    pub store_dir: Option<std::path::PathBuf>,
    /// On-disk byte budget of the spill store, in mebibytes.
    pub store_mb: usize,
    /// Requests whose end-to-end latency reaches this many milliseconds
    /// dump their span tree into the `TraceDump` ring (deadline-exceeded
    /// requests are always captured). `0` captures every traced request
    /// — the setting for tests and short diagnostics sessions.
    pub slow_trace_ms: u64,
    /// Bind address of the HTTP exposition listener (`--metrics-addr`):
    /// `GET /metrics`, `/series`, `/events`, `/slo`, `/healthz` on a
    /// dedicated thread. `None` (the default) runs without one.
    pub metrics_addr: Option<String>,
    /// Width of one rollup window in milliseconds — the roller thread's
    /// tick, the grain of `/series` history and of SLO burn windows.
    pub rollup_window_ms: u64,
    /// Declared SLOs, evaluated every rollup window against the rings
    /// (see [`SloSpec::parse`] for the declaration format).
    pub slos: Vec<SloSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: cores.max(2),
            queue_limit: 256,
            cache_mb: 64,
            engine_threads: cores,
            io_timeout: Some(Duration::from_secs(30)),
            max_connections: 1024,
            degrade: DegradeConfig::default(),
            store_dir: None,
            store_mb: 256,
            slow_trace_ms: 500,
            metrics_addr: None,
            rollup_window_ms: 1_000,
            slos: Vec::new(),
        }
    }
}

/// Capacity of the slow-request trace ring: deep enough to hold a
/// burst of outliers between `TraceDump` polls, small enough that an
/// unpolled server caps its memory at a few dozen span trees.
const TRACE_RING_CAP: usize = 64;

/// Counters owned by the runtime (cache counters live in [`DistCache`] /
/// [`InFlight`]). The request/refusal/shed tallies are registry
/// counters — same cells the `MetricsSnapshot` opcode exposes — while
/// the two lifecycle watermarks stay plain atomics: they are shutdown
/// bookkeeping, not metrics.
struct RuntimeCounters {
    requests: Counter,
    busy: Counter,
    /// Queued jobs shed at dequeue because their deadline had already
    /// expired — answered `DeadlineExceeded` without computing.
    deadline_sheds: Counter,
    /// Every reply queued to a writer, and the subset that refused or
    /// failed the request (`Error` / `Busy` / `DeadlineExceeded` /
    /// `ShuttingDown`) — the numerator and denominator of the default
    /// availability SLO.
    replies_total: Counter,
    replies_failed: Counter,
    active_jobs: AtomicUsize,
    /// Replies queued to a connection writer but not yet written to the
    /// socket. Graceful shutdown waits for this to reach zero, so the
    /// final acknowledgements are flushed before `wait` returns (and
    /// before a hosting process exits, killing the detached writers).
    pending_replies: AtomicUsize,
}

impl RuntimeCounters {
    fn registered(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            busy: registry.counter("serve.busy_rejections"),
            deadline_sheds: registry.counter("serve.deadline_sheds"),
            replies_total: registry.counter("serve.replies.total"),
            replies_failed: registry.counter("serve.replies.failed"),
            active_jobs: AtomicUsize::new(0),
            pending_replies: AtomicUsize::new(0),
        }
    }
}

/// Per-stage latency histograms, one per pipeline stage a request
/// crosses. Registered under `serve.stage.*_ns` plus the end-to-end
/// `serve.request_ns`.
struct StageHists {
    decode: Histogram,
    queue: Histogram,
    coalesce_wait: Histogram,
    cache_probe: Histogram,
    store_load: Histogram,
    compute: Histogram,
    encode: Histogram,
    write: Histogram,
    request: Histogram,
}

impl StageHists {
    fn registered(registry: &Registry) -> Self {
        Self {
            decode: registry.histogram("serve.stage.decode_ns"),
            queue: registry.histogram("serve.stage.queue_ns"),
            coalesce_wait: registry.histogram("serve.stage.coalesce_wait_ns"),
            cache_probe: registry.histogram("serve.stage.cache_probe_ns"),
            store_load: registry.histogram("serve.stage.store_load_ns"),
            compute: registry.histogram("serve.stage.compute_ns"),
            encode: registry.histogram("serve.stage.encode_ns"),
            write: registry.histogram("serve.stage.write_ns"),
            request: registry.histogram("serve.request_ns"),
        }
    }
}

/// Shared server state.
pub(crate) struct ServerState {
    request_pool: WorkerPool,
    engine_pool: Arc<WorkerPool>,
    cache: DistCache,
    /// The persistent spill tier, if configured and openable.
    store: Option<DistStore>,
    inflight: InFlight,
    counters: RuntimeCounters,
    /// This server's metric registry; compute-tier metrics
    /// (`pool.*`, `core.*`, `sim.*`) live on [`Registry::global`] and
    /// are merged in at snapshot time.
    obs: Registry,
    stages: StageHists,
    /// Span trees of slow / deadline-exceeded requests, drained by the
    /// `TraceDump` opcode.
    traces: TraceRing,
    /// Capture threshold in nanoseconds; `0` captures every trace.
    slow_trace_ns: u64,
    /// Rollup rings the roller thread folds [`obs_snapshot`]
    /// (ServerState::obs_snapshot) into every window.
    ts: TimeSeries,
    /// The structured event log; the process-global one so chaos /
    /// store / fault events land next to serve events and `/events`
    /// shows them all.
    events: &'static EventLog,
    /// Latest SLO evaluation, refreshed by the roller every window.
    slo_status: Mutex<Vec<SloStatus>>,
    shutting_down: AtomicBool,
    io_timeout: Option<Duration>,
    max_connections: usize,
    connections: AtomicUsize,
    degrade: DegradeConfig,
}

impl ServerState {
    fn stats(&self) -> ServeStats {
        let (hits, misses, evictions, entries, bytes) = self.cache.stats();
        let store = self
            .store
            .as_ref()
            .map(DistStore::stats)
            .unwrap_or_default();
        ServeStats {
            requests: self.counters.requests.get(),
            busy_rejections: self.counters.busy.get(),
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.inflight.coalesced(),
            evictions,
            cache_entries: entries,
            cache_bytes: bytes,
            deadline_sheds: self.counters.deadline_sheds.get(),
            store_spills: store.spills,
            store_loads: store.loads,
            store_recovered: store.recovered,
            store_corrupt_dropped: store.corrupt_dropped,
        }
    }

    /// One coherent snapshot of every registered series: gauges are
    /// refreshed first, then this server's registry is merged over the
    /// process-global one (pool queue waits, kernel/ANN/sim timings).
    pub(crate) fn obs_snapshot(&self) -> MetricsSnapshot {
        let (_, _, _, entries, bytes) = self.cache.stats();
        self.obs
            .gauge("serve.cache.entries")
            .set(i64::try_from(entries).unwrap_or(i64::MAX));
        self.obs
            .gauge("serve.cache.bytes")
            .set(i64::try_from(bytes).unwrap_or(i64::MAX));
        self.obs
            .gauge("serve.connections")
            .set(i64::try_from(self.connections.load(Ordering::SeqCst)).unwrap_or(i64::MAX));
        self.obs
            .gauge("serve.queue.depth")
            .set(i64::try_from(self.request_pool.queued_jobs()).unwrap_or(i64::MAX));
        self.obs.snapshot().merge(Registry::global().snapshot())
    }

    /// The rollup rings (exposition listener).
    pub(crate) fn time_series(&self) -> &TimeSeries {
        &self.ts
    }

    /// The structured event log (exposition listener).
    pub(crate) fn event_log(&self) -> &'static EventLog {
        self.events
    }

    /// The latest SLO evaluation (exposition listener).
    pub(crate) fn slo_statuses(&self) -> Vec<SloStatus> {
        self.slo_status.lock().unwrap().clone()
    }

    /// Whether shutdown has begun (exposition and roller threads poll
    /// this to exit).
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Inserts a completed distribution into the cache, demoting any
    /// evicted entries into the spill store. Spill failures lose only
    /// the demotion (the store skips that entry), never the request.
    fn insert_cached(&self, key: u64, value: Arc<Distribution>, flags: u8) {
        let evicted = self.cache.insert(key, value, flags);
        if let Some(store) = &self.store {
            for (k, f, d) in evicted {
                let _ = store.spill(k, f, &d);
            }
        }
    }
}

/// A running server. Obtained from [`serve`]; dropped or
/// [`wait`](ServerHandle::wait)ed to completion.
pub struct ServerHandle {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    http: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of the HTTP exposition listener, when
    /// `metrics_addr` was configured (resolves port 0).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The latest SLO evaluation (refreshed every rollup window).
    #[must_use]
    pub fn slo_statuses(&self) -> Vec<SloStatus> {
        self.state.slo_statuses()
    }

    /// A snapshot of the serving counters (the `Stats` opcode, without
    /// a round trip — used by the in-process bench harness).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }

    /// A snapshot of every registered metric series (the
    /// `MetricsSnapshot` opcode, without a round trip).
    #[must_use]
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        self.state.obs_snapshot()
    }

    /// A cloneable, non-owning view of the running server for digest /
    /// monitoring threads: it can read stats and metric snapshots but
    /// cannot shut the server down or block its drain.
    #[must_use]
    pub fn observer(&self) -> ServeObserver {
        ServeObserver {
            state: Arc::clone(&self.state),
        }
    }

    /// Triggers shutdown from the hosting process (equivalent to a
    /// `Shutdown` frame).
    pub fn shutdown(&self) {
        begin_shutdown(&self.state, self.local_addr);
    }

    /// Blocks until the server has shut down: the acceptor has exited
    /// and every accepted request has been answered. Returns the final
    /// counters.
    #[must_use]
    pub fn wait(mut self) -> ServeStats {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor does not panic");
        }
        // The exposition listener polls the shutdown flag every accept
        // tick; joining it here closes the metrics port before `wait`
        // returns.
        if let Some(http) = self.http.take() {
            http.join().expect("exposition thread does not panic");
        }
        // Drain: every accepted job decrements `active_jobs` after its
        // reply is queued, and every queued reply decrements
        // `pending_replies` once written to the socket — so when both
        // are zero, all accepted work is answered AND flushed.
        while self.state.counters.active_jobs.load(Ordering::SeqCst) > 0
            || self.state.counters.pending_replies.load(Ordering::SeqCst) > 0
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Graceful shutdowns flush the whole resident hot set — not
        // just past evictions — into the spill tier, hottest entries
        // last so they supersede on replay: the next start over this
        // directory serves warm. (A crash skips this; the store still
        // holds every spill fsync'd before the crash.)
        if let Some(store) = &self.state.store {
            for (key, flags, value) in self.state.cache.entries() {
                let _ = store.spill(key, flags, &value);
            }
        }
        self.state.stats()
    }
}

/// A cloneable read-only view of a running server, handed to the
/// `repro serve` digest thread (and anything else that wants periodic
/// snapshots without owning the [`ServerHandle`]).
#[derive(Clone)]
pub struct ServeObserver {
    state: Arc<ServerState>,
}

impl ServeObserver {
    /// Current serving counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }

    /// Current metric-registry snapshot (server + process-global).
    #[must_use]
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        self.state.obs_snapshot()
    }

    /// Whether shutdown has begun (digest threads use this to stop).
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }
}

/// Flags shutdown and unblocks the acceptor with a wake-up connection.
fn begin_shutdown(state: &ServerState, addr: SocketAddr) {
    if !state.shutting_down.swap(true, Ordering::SeqCst) {
        // Already-queued jobs drain; new submissions are refused at the
        // pool too (belt and braces under the reader-side flag check).
        state.request_pool.begin_shutdown();
        // The acceptor blocks in `accept`; a throwaway connection makes
        // it re-check the flag. Failure is fine (acceptor already gone).
        let _ = TcpStream::connect(addr);
    }
}

/// Binds and starts the serving runtime.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let obs = Registry::new();
    // A store that cannot be opened is a degraded start (cold cache,
    // no persistence), never a refused one.
    let events = EventLog::global();
    let store = config.store_dir.as_ref().and_then(|dir| {
        let budget = (config.store_mb.max(1) as u64).saturating_mul(1024 * 1024);
        match DistStore::open_registered(dir, budget, &obs) {
            Ok(store) => Some(store),
            Err(e) => {
                events
                    .warn("serve", "store unusable; serving without persistence")
                    .field("dir", dir.display())
                    .field("error", e);
                None
            }
        }
    });
    let state = Arc::new(ServerState {
        request_pool: WorkerPool::with_queue_limit(config.workers.max(1), config.queue_limit),
        engine_pool: Arc::new(WorkerPool::new(config.engine_threads.max(1))),
        cache: DistCache::with_registry(config.cache_mb.saturating_mul(1024 * 1024), &obs),
        store,
        inflight: InFlight::with_registry(&obs),
        counters: RuntimeCounters::registered(&obs),
        stages: StageHists::registered(&obs),
        traces: TraceRing::new(TRACE_RING_CAP),
        slow_trace_ns: config.slow_trace_ms.saturating_mul(1_000_000),
        ts: TimeSeries::new(RollupConfig {
            window_ms: config.rollup_window_ms.max(10),
            ..RollupConfig::default()
        }),
        events,
        slo_status: Mutex::new(Vec::new()),
        obs,
        shutting_down: AtomicBool::new(false),
        io_timeout: config.io_timeout.filter(|t| !t.is_zero()),
        max_connections: config.max_connections.max(1),
        connections: AtomicUsize::new(0),
        degrade: config.degrade,
    });
    // The roller: one tick per rollup window, folding a full snapshot
    // into the rings and re-evaluating SLOs. Detached — it polls the
    // shutdown flag every slice and exits within one, holding only its
    // own Arc on the state.
    {
        let state = Arc::clone(&state);
        let mut tracker = SloTracker::new(config.slos.clone(), &state.obs);
        let window = Duration::from_millis(config.rollup_window_ms.max(10));
        std::thread::Builder::new()
            .name("hammer-serve-roll".into())
            .spawn(move || {
                let slice = Duration::from_millis(20).min(window);
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < window {
                        if state.is_shutting_down() {
                            return;
                        }
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                    state.ts.roll(&state.obs_snapshot());
                    let statuses = tracker.evaluate(&state.ts, state.events);
                    *state.slo_status.lock().unwrap() = statuses;
                }
            })
            .expect("roller thread spawns");
    }
    // The exposition listener is optional and bound before the handle
    // is returned, so `metrics_addr()` always resolves port 0.
    let (metrics_addr, http_thread) = match &config.metrics_addr {
        Some(addr) => {
            let (bound, thread) = crate::http::spawn(addr, Arc::clone(&state))?;
            events
                .info("serve", "exposition listener up")
                .field("addr", bound);
            (Some(bound), Some(thread))
        }
        None => (None, None),
    };
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("hammer-serve-accept".into())
            .spawn(move || accept_loop(&listener, &state))
            .expect("acceptor thread spawns")
    };
    Ok(ServerHandle {
        local_addr,
        metrics_addr,
        acceptor: Some(acceptor),
        http: http_thread,
        state,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutting_down.load(Ordering::SeqCst) {
                    return; // the wake-up connection, or a late client
                }
                // Admission control: a connection over the cap gets one
                // Busy frame (request id 0 — nothing was read) and is
                // dropped, so a connection flood degrades into fast
                // refusals instead of unbounded reader threads.
                if state.connections.load(Ordering::SeqCst) >= state.max_connections {
                    state.counters.busy.inc();
                    let mut w = BufWriter::new(stream);
                    let busy = Reply::Busy;
                    let _ = write_frame(&mut w, 0, busy.opcode(), &busy.encode());
                    continue;
                }
                state.connections.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                let addr = listener
                    .local_addr()
                    .expect("bound listener has an address");
                // Readers are detached: they exit on client EOF (or
                // after relaying Shutdown). `wait` tracks *jobs*, not
                // connections, so an idle open connection never blocks
                // shutdown.
                let spawned = std::thread::Builder::new()
                    .name("hammer-serve-conn".into())
                    .spawn(move || {
                        connection_loop(stream, &conn_state, addr);
                        conn_state.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    // OS thread exhaustion: the closure never ran, so
                    // back the slot out here.
                    state.connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(_) => {
                // Transient accept failure; keep serving.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    }
}

/// A reply queued to the writer thread: request id, the reply itself,
/// and — for traced compute requests — the request opcode plus the
/// trace context the writer finalizes after the socket write.
type Outbound = (u64, Reply, Option<(u8, TraceCtx)>);

/// The per-connection reader: parses frames, answers cheap opcodes
/// inline, and queues compute opcodes onto the bounded request pool.
/// Replies flow through an mpsc channel to a dedicated writer thread,
/// so slow computations never block the read side and out-of-order
/// completion is fine (the request id disambiguates).
#[allow(clippy::too_many_lines)]
fn connection_loop(stream: TcpStream, state: &Arc<ServerState>, addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (raw_tx, reply_rx) = mpsc::channel::<Outbound>();
    let writer = {
        let state = Arc::clone(state);
        std::thread::Builder::new()
            .name("hammer-serve-write".into())
            .spawn(move || {
                let mut w = BufWriter::new(write_half);
                let mut broken = false;
                // Keep draining after a write failure: every queued
                // reply must still decrement `pending_replies` or
                // shutdown would wait forever on a dead client.
                while let Ok((id, reply, traced)) = reply_rx.recv() {
                    let outcome = reply.opcode();
                    let trace_id = traced.as_ref().map_or(0, |(_, ctx)| ctx.trace_id());
                    if !broken {
                        let payload = {
                            let _t = traced
                                .as_ref()
                                .map(|(_, ctx)| ctx.span("encode", Some(&state.stages.encode)));
                            reply.encode()
                        };
                        let wrote = {
                            let _t = traced
                                .as_ref()
                                .map(|(_, ctx)| ctx.span("write", Some(&state.stages.write)));
                            write_frame_traced(&mut w, id, outcome, 0, trace_id, &payload)
                        };
                        if wrote.is_err() {
                            broken = true;
                        }
                    }
                    // The writer is the last stop on the reply path, so
                    // it finalizes the trace: end-to-end latency into
                    // the request histogram, and the span tree into the
                    // slow-request ring when it crossed the threshold
                    // (deadline misses always capture — those are the
                    // requests someone will ask about).
                    if let Some((op, ctx)) = traced {
                        let trace = ctx.finish(op, outcome);
                        state.stages.request.record(trace.total_ns);
                        if state.slow_trace_ns == 0
                            || trace.total_ns >= state.slow_trace_ns
                            || outcome == opcode::DEADLINE_EXCEEDED
                        {
                            state.traces.push(trace);
                        }
                    }
                    state
                        .counters
                        .pending_replies
                        .fetch_sub(1, Ordering::SeqCst);
                }
            })
            .expect("writer thread spawns")
    };
    // Every queued reply is pre-counted so `wait` can see it before the
    // writer picks it up.
    let reply_tx = {
        let state = Arc::clone(state);
        move |message: Outbound| {
            // Availability accounting: every reply, and the subset that
            // refused or failed its request.
            state.counters.replies_total.inc();
            if matches!(
                message.1,
                Reply::Error(_) | Reply::Busy | Reply::DeadlineExceeded | Reply::ShuttingDown
            ) {
                state.counters.replies_failed.inc();
            }
            state
                .counters
                .pending_replies
                .fetch_add(1, Ordering::SeqCst);
            if raw_tx.send(message).is_err() {
                // Writer gone (unreachable while a sender lives, but do
                // not leak the pre-count if it ever happens).
                state
                    .counters
                    .pending_replies
                    .fetch_sub(1, Ordering::SeqCst);
            }
        }
    };

    // Writes are always bounded; reads are bounded per-frame by the
    // idle-tolerant loop below.
    let _ = read_half_timeouts(&stream, state.io_timeout);
    let mut read_half = stream;
    loop {
        let frame = match read_one_frame(&mut read_half, state) {
            FrameOutcome::Frame(frame) => frame,
            FrameOutcome::Closed => break, // EOF, dead peer, slow-loris
            FrameOutcome::Malformed => {
                // Framing is unrecoverable mid-stream: report and drop.
                reply_tx((0, Reply::Error("malformed frame".into()), None));
                break;
            }
        };
        let Frame {
            request_id: id,
            opcode: op,
            deadline_ms,
            trace_id,
            payload,
        } = frame;
        // A draining server answers surviving connections in-band —
        // `ShuttingDown`, not a silent close — so clients distinguish
        // "server going away" from a network failure and do not burn
        // their transport retry re-sending work it will never take.
        if state.shutting_down.load(Ordering::SeqCst) {
            reply_tx((id, Reply::ShuttingDown, None));
            continue;
        }
        // Compute opcodes get a trace from the moment their frame is
        // complete: the client's id when it sent one, a fresh one for
        // bare clients — both end up on the reply header either way.
        let is_compute = matches!(
            op,
            opcode::RECONSTRUCT | opcode::METRICS | opcode::SAMPLE_AND_RECONSTRUCT
        );
        let ctx = if is_compute && hammer_obs::timing_enabled() {
            Some(TraceCtx::new(if trace_id != 0 {
                trace_id
            } else {
                gen_trace_id()
            }))
        } else {
            None
        };
        let request = {
            let _t = ctx
                .as_ref()
                .map(|c| c.span("decode", Some(&state.stages.decode)));
            Request::decode(op, &payload)
        };
        let request = match request {
            Ok(request) => request,
            Err(e) => {
                reply_tx((id, Reply::Error(e.to_string()), ctx.map(|c| (op, c))));
                continue;
            }
        };
        // The deadline clock starts at frame arrival: time the request
        // spent queued behind the admission queue counts against it.
        let cancel = if deadline_ms > 0 {
            CancelToken::after(Duration::from_millis(u64::from(deadline_ms)))
        } else {
            CancelToken::new()
        };
        match request {
            Request::Ping => {
                reply_tx((id, Reply::Pong, None));
            }
            Request::Stats => {
                reply_tx((id, Reply::Stats(state.stats()), None));
            }
            Request::TraceDump => {
                let entries = state.traces.drain().into_iter().map(Into::into).collect();
                reply_tx((id, Reply::TraceDump(entries), None));
            }
            Request::MetricsSnapshot => {
                reply_tx((id, Reply::MetricsSnapshot(state.obs_snapshot()), None));
            }
            Request::Shutdown => {
                reply_tx((id, Reply::ShutdownAck, None));
                begin_shutdown(state, addr);
                break;
            }
            compute @ (Request::Reconstruct { .. }
            | Request::Metrics { .. }
            | Request::SampleAndReconstruct(_)) => {
                // Degradation is decided at admission time, from the
                // queue depth the request actually experienced.
                let degraded = state.degrade.enabled
                    && state.request_pool.queued_jobs() >= state.degrade.queue_threshold
                    && match &compute {
                        Request::Reconstruct { counts, .. } => {
                            counts.len() >= state.degrade.min_support
                        }
                        _ => false,
                    };
                // Count the job BEFORE re-checking the shutdown flag:
                // `wait` trusts `active_jobs`, so the increment must be
                // visible before a concurrent `wait` could observe
                // "nothing pending". If shutdown began in the meantime,
                // back the count out and refuse — never submit work a
                // completed `wait` would no longer cover.
                state.counters.active_jobs.fetch_add(1, Ordering::SeqCst);
                if state.shutting_down.load(Ordering::SeqCst) {
                    state.counters.active_jobs.fetch_sub(1, Ordering::SeqCst);
                    state.counters.busy.inc();
                    reply_tx((id, Reply::ShuttingDown, ctx.map(|c| (op, c))));
                    continue;
                }
                let job_state = Arc::clone(state);
                let job_tx = reply_tx.clone();
                let trace = ctx.clone();
                // The queue-wait span runs from here (submission) to
                // the top of the job closure (dequeue on a worker).
                let queued_at = trace.as_ref().map(TraceCtx::elapsed_ns);
                // Deadlined jobs queue earliest-deadline-first, so a
                // mixed-budget storm spends workers on the requests
                // that can still make it (undeadlined jobs queue FIFO
                // behind every deadlined one).
                let queue_deadline = cancel.deadline();
                let submitted =
                    state
                        .request_pool
                        .try_submit_with_deadline(queue_deadline, move || {
                            if let (Some(c), Some(start)) = (&trace, queued_at) {
                                let waited = c.elapsed_ns().saturating_sub(start);
                                c.add_span("queue", start, waited);
                                job_state.stages.queue.record(waited);
                            }
                            // The cheapest cancellation point: the deadline
                            // may have expired while the job sat in the
                            // queue — shed it without computing.
                            let reply = if cancel.is_cancelled() {
                                job_state.counters.deadline_sheds.inc();
                                Reply::DeadlineExceeded
                            } else {
                                handle_compute(
                                    &job_state,
                                    compute,
                                    &cancel,
                                    degraded,
                                    trace.as_ref(),
                                )
                            };
                            job_tx((id, reply, trace.map(|c| (op, c))));
                            job_state
                                .counters
                                .active_jobs
                                .fetch_sub(1, Ordering::SeqCst);
                        });
                if submitted.is_err() {
                    state.counters.active_jobs.fetch_sub(1, Ordering::SeqCst);
                    state.counters.busy.inc();
                    let refusal = if state.shutting_down.load(Ordering::SeqCst) {
                        Reply::ShuttingDown
                    } else {
                        Reply::Busy
                    };
                    reply_tx((id, refusal, ctx.map(|c| (op, c))));
                }
            }
        }
    }
    drop(reply_tx);
    // Jobs still in flight hold their own senders; the writer exits
    // once the last one completes. Join so the writer cannot outlive
    // the data it flushes.
    let _ = writer.join();
}

/// How long an idle connection waits between polls for a frame's first
/// byte.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// What [`read_one_frame`] produced.
enum FrameOutcome {
    /// A complete frame.
    Frame(Frame),
    /// EOF, a dead peer, or a slow-loris mid-frame stall — in every
    /// case, stop serving the connection.
    Closed,
    /// A corrupt header or oversized payload: unrecoverable mid-stream.
    Malformed,
}

/// Reads one frame with the two-speed timeout discipline: *idle* time
/// (waiting for a frame to start) is unbounded — a parked persistent
/// connection is healthy — while *mid-frame* time is bounded by the
/// configured i/o timeout, so a peer that starts a header and stalls
/// (slow-loris) is reaped instead of pinning a reader thread forever.
fn read_one_frame(stream: &mut TcpStream, state: &ServerState) -> FrameOutcome {
    let first = loop {
        let _ = stream.set_read_timeout(Some(IDLE_TICK));
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => return FrameOutcome::Closed,
            Ok(_) => break byte[0],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return FrameOutcome::Closed,
        }
    };
    let _ = stream.set_read_timeout(state.io_timeout);
    let mut framed = std::io::Cursor::new([first]).chain(stream);
    match read_frame_full(&mut framed) {
        Ok(frame) => FrameOutcome::Frame(frame),
        Err(WireError::Io(_)) => FrameOutcome::Closed,
        Err(_) => FrameOutcome::Malformed,
    }
}

/// Sets the write timeout for a connection (reads are managed
/// per-frame by [`read_one_frame`]; socket options are shared across
/// the cloned halves).
fn read_half_timeouts(stream: &TcpStream, timeout: Option<Duration>) -> std::io::Result<()> {
    stream.set_write_timeout(timeout)
}

/// Executes one compute request on a pool worker.
fn handle_compute(
    state: &Arc<ServerState>,
    request: Request,
    cancel: &CancelToken,
    degraded: bool,
    trace: Option<&TraceCtx>,
) -> Reply {
    state.counters.requests.inc();
    match request {
        Request::Reconstruct { config, counts } => {
            if counts.is_empty() {
                return Reply::Error("empty histogram has no distribution".into());
            }
            let config = if degraded {
                degrade_config(config, counts.n_bits())
            } else {
                config
            };
            let mut key = Fnv1a::new();
            // Degraded results live under their own namespace: an
            // approximate answer must never be served to (or cached
            // for) a request that asked for the exact one.
            key.write_bytes(if degraded {
                b"reconstruct/degraded/v1".as_slice()
            } else {
                b"reconstruct/v1".as_slice()
            });
            key.write_u64(counts.fingerprint());
            key.write_u64(config.fingerprint());
            // The job itself runs on the *request* pool; the engine
            // pool is distinct, so handing it to Hammer for ANN tree
            // builds cannot nest a fan_out on the pool we run on.
            let engine_pool = Arc::clone(&state.engine_pool);
            let job_cancel = cancel.clone();
            // The store record carries the approx flag too, so even a
            // corrupted key directory can never promote an approximate
            // record to an exact answer.
            let flags = if degraded { FLAG_APPROX } else { 0 };
            let reply = cached_compute(state, key.finish(), flags, cancel, trace, move || {
                Hammer::with_config(config)
                    .with_pool(engine_pool)
                    .try_reconstruct_counts(&counts, &job_cancel)
                    .map_err(|Cancelled| ComputeError::Cancelled)
            });
            match reply {
                Reply::Distribution(d) if degraded => Reply::ApproxDistribution(d),
                other => other,
            }
        }
        Request::SampleAndReconstruct(job) => {
            let key = job.fingerprint();
            let engine_pool = Arc::clone(&state.engine_pool);
            let job_cancel = cancel.clone();
            cached_compute(state, key, 0, cancel, trace, move || {
                run_sample_job(&job, &engine_pool, &job_cancel)
            })
        }
        Request::Metrics { dist, correct } => {
            if correct.is_empty() {
                return Reply::Error("empty correct-outcome set".into());
            }
            if let Some(bad) = correct.iter().find(|x| x.len() != dist.n_bits()) {
                return Reply::Error(format!(
                    "correct outcome width {} does not match distribution width {}",
                    bad.len(),
                    dist.n_bits()
                ));
            }
            let _t = trace.map(|c| c.span("compute", Some(&state.stages.compute)));
            Reply::Metrics(crate::codec::MetricsReply {
                pst: metrics::pst(&dist, &correct),
                ist: metrics::ist(&dist, &correct),
                ehd: metrics::ehd(&dist, &correct),
                uniform_ehd: metrics::uniform_ehd(dist.n_bits()),
            })
        }
        Request::Ping
        | Request::Stats
        | Request::TraceDump
        | Request::MetricsSnapshot
        | Request::Shutdown => {
            unreachable!("cheap opcodes are answered inline by the reader")
        }
    }
}

/// The ANN-approximate configuration a degraded request runs under:
/// force the LSH-forest scoring path (and a neighborhood it can engage
/// at this width) so a saturated queue drains with cheap approximate
/// answers instead of refusals.
fn degrade_config(
    mut config: hammer_core::HammerConfig,
    n_bits: usize,
) -> hammer_core::HammerConfig {
    let cap = (n_bits / 4).max(1);
    let max_d = config.neighborhood.max_distance(n_bits).clamp(1, cap);
    config.neighborhood = NeighborhoodLimit::Fixed(max_d);
    config.kernel.ann.enabled = true;
    config.kernel.ann.crossover = 2;
    config
}

/// The cache + coalescing discipline around one computation.
///
/// The leader computes under a publish-on-drop guard, so **every** exit
/// — success, failure, cancellation, panic — wakes the followers.
/// Followers wait no longer than their own deadline, and when the
/// leader's failure was leader-specific (its deadline fired, its worker
/// panicked) they re-claim the key and compute for themselves rather
/// than inherit a failure their budget did not earn.
///
/// A leader that misses the cache probes the persistent store before
/// computing: a disk hit promotes back into the cache and skips the
/// computation entirely (`store_loads`, not `cache_misses`).
///
/// Trace spans: the first cache probe is `cache_probe`, a follower's
/// wait is `coalesce_wait`, the leader's store probe is `store_load`
/// (only when a store is configured) and the computation itself is
/// `compute`.
fn cached_compute<F>(
    state: &Arc<ServerState>,
    key: u64,
    flags: u8,
    cancel: &CancelToken,
    trace: Option<&TraceCtx>,
    compute: F,
) -> Reply
where
    F: FnOnce() -> Result<Distribution, ComputeError>,
{
    let probed = {
        let _t = trace.map(|c| c.span("cache_probe", Some(&state.stages.cache_probe)));
        state.cache.get(key)
    };
    if let Some(hit) = probed {
        return Reply::Distribution((*hit).clone());
    }
    let mut compute = Some(compute);
    // Bounded re-lead: a follower whose leader was cancelled or
    // panicked retries leadership a few times, but a pathological run
    // of dying leaders must not loop forever.
    for _ in 0..3 {
        match state.inflight.claim(key) {
            Claim::Leader => {
                let guard = state.inflight.publish_guard(key);
                // A racing leader may have completed between our cache
                // probe and our claim; serve its entry rather than
                // recompute. (`get` counted our probe as the miss; this
                // probe would count a hit, which is accurate — the
                // entry IS there.)
                let result: ComputeResult = if let Some(hit) = state.cache.get(key) {
                    Ok(hit)
                } else if cancel.is_cancelled() {
                    // Do not burn a compute the requester stopped
                    // waiting for; followers re-lead under their own
                    // budgets.
                    Err(ComputeError::Cancelled)
                } else {
                    let loaded = state.store.as_ref().and_then(|store| {
                        let _t =
                            trace.map(|c| c.span("store_load", Some(&state.stages.store_load)));
                        store.load(key, flags)
                    });
                    if let Some(d) = loaded {
                        // Spill-tier hit: promote back into the cache
                        // and answer without recomputing. The record
                        // was CRC- and invariant-revalidated on the way
                        // in.
                        let dist = Arc::new(d);
                        state.insert_cached(key, Arc::clone(&dist), flags);
                        Ok(dist)
                    } else {
                        state.cache.note_miss();
                        let job = compute.take().expect("leader computes at most once");
                        #[cfg(feature = "fault-points")]
                        let fault_cancel = cancel.clone();
                        let _t = trace.map(|c| c.span("compute", Some(&state.stages.compute)));
                        match catch_unwind(AssertUnwindSafe(move || {
                            #[cfg(feature = "fault-points")]
                            crate::fault::on_compute(Some(&fault_cancel));
                            job()
                        })) {
                            Ok(Ok(dist)) => {
                                let dist = Arc::new(dist);
                                state.insert_cached(key, Arc::clone(&dist), flags);
                                Ok(dist)
                            }
                            Ok(Err(e)) => Err(e),
                            Err(payload) => Err(ComputeError::Panicked(
                                hammer_sim::pool::panic_message(payload.as_ref()),
                            )),
                        }
                    }
                };
                guard.publish(result.clone());
                return reply_of(result);
            }
            follower @ Claim::Follower(_) => {
                let waited = {
                    let _t =
                        trace.map(|c| c.span("coalesce_wait", Some(&state.stages.coalesce_wait)));
                    follower.wait_until(cancel.deadline())
                };
                let Some(result) = waited else {
                    return Reply::DeadlineExceeded;
                };
                match result {
                    Err(e) if e.is_leader_specific() => {
                        // The *leader's* deadline fired or its worker
                        // died; our budget may still be live. Probe the
                        // cache (a racing re-leader may have finished)
                        // and try to lead ourselves.
                        if let Some(hit) = state.cache.get(key) {
                            return Reply::Distribution((*hit).clone());
                        }
                        if cancel.is_cancelled() {
                            return Reply::DeadlineExceeded;
                        }
                    }
                    other => return reply_of(other),
                }
            }
        }
    }
    Reply::Error("computation failed repeatedly (leaders kept dying)".into())
}

fn reply_of(result: ComputeResult) -> Reply {
    match result {
        Ok(dist) => Reply::Distribution((*dist).clone()),
        Err(ComputeError::Cancelled) => Reply::DeadlineExceeded,
        Err(ComputeError::Failed(msg)) => Reply::Error(msg),
        Err(ComputeError::Panicked(msg)) => Reply::Error(format!("computation panicked: {msg}")),
    }
}

/// Runs one simulate-then-reconstruct job on the shared engine pool.
fn run_sample_job(
    job: &SampleJob,
    engine_pool: &Arc<WorkerPool>,
    cancel: &CancelToken,
) -> Result<Distribution, ComputeError> {
    use rand::SeedableRng;
    let fail = |msg: String| ComputeError::Failed(msg);
    let device = job.device.to_device().map_err(fail)?;
    if job.trials == 0 {
        return Err(ComputeError::Failed("zero trials".into()));
    }
    if job.trials > 10_000_000 {
        return Err(ComputeError::Failed(format!(
            "trial budget {} exceeds the 10M cap",
            job.trials
        )));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(job.seed);
    let counts = AutoEngine::new(&device)
        .with_pool(Arc::clone(engine_pool))
        .sample_with_cancel(&job.circuit, job.trials, &mut rng, cancel)
        .map_err(|e| match e {
            hammer_sim::SimError::Cancelled => ComputeError::Cancelled,
            other => ComputeError::Failed(other.to_string()),
        })?;
    Hammer::with_config(job.config)
        .with_pool(Arc::clone(engine_pool))
        .try_reconstruct_counts(&counts, cancel)
        .map_err(|Cancelled| ComputeError::Cancelled)
}

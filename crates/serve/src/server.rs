//! The server runtime: TCP acceptor, per-connection framed
//! reader/writer threads, a bounded worker-pool request queue with
//! `Busy` backpressure, and graceful shutdown that drains in-flight
//! work.
//!
//! # Thread anatomy
//!
//! ```text
//! acceptor ──► per-connection reader ──► request pool (WorkerPool,
//!     │             │    ▲                bounded queue) ──┐
//!     │             │    └── Busy reply when full          │ compute
//!     │             ▼                                      ▼
//!     │        per-connection writer ◄──── mpsc ◄──── reply (id, frame)
//!     └── engine pool (WorkerPool, shared): trial blocks of every
//!         SampleAndReconstruct, amortized across requests
//! ```
//!
//! Two pools on purpose: request jobs block on cache coalescing and on
//! engine fan-out, so running engine trial blocks on the *same* pool
//! could deadlock (every worker waiting on work only that pool could
//! run). The request pool is bounded (backpressure); the engine pool is
//! fed only by request workers, so it needs no bound of its own.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use hammer_core::Hammer;
use hammer_dist::fingerprint::Fnv1a;
use hammer_dist::{metrics, Distribution};
use hammer_sim::{AutoEngine, WorkerPool};

use crate::cache::{Claim, ComputeResult, DistCache, InFlight};
use crate::codec::{Reply, Request, SampleJob, ServeStats};
use crate::protocol::{read_frame, write_frame, WireError};

/// Serving configuration (the `repro serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Request-execution workers.
    pub workers: usize,
    /// Queued (not yet running) requests beyond which the server
    /// replies `Busy`.
    pub queue_limit: usize,
    /// Distribution-cache budget in mebibytes.
    pub cache_mb: usize,
    /// Worker threads for the shared engine pool (trial blocks of
    /// `SampleAndReconstruct` jobs).
    pub engine_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self {
            addr: "127.0.0.1:7878".into(),
            workers: cores.max(2),
            queue_limit: 256,
            cache_mb: 64,
            engine_threads: cores,
        }
    }
}

/// Counters owned by the runtime (cache counters live in [`DistCache`] /
/// [`InFlight`]).
#[derive(Default)]
struct RuntimeCounters {
    requests: AtomicU64,
    busy: AtomicU64,
    active_jobs: AtomicUsize,
    /// Replies queued to a connection writer but not yet written to the
    /// socket. Graceful shutdown waits for this to reach zero, so the
    /// final acknowledgements are flushed before `wait` returns (and
    /// before a hosting process exits, killing the detached writers).
    pending_replies: AtomicUsize,
}

/// Shared server state.
struct ServerState {
    request_pool: WorkerPool,
    engine_pool: Arc<WorkerPool>,
    cache: DistCache,
    inflight: InFlight,
    counters: RuntimeCounters,
    shutting_down: AtomicBool,
}

impl ServerState {
    fn stats(&self) -> ServeStats {
        let (hits, misses, evictions, entries, bytes) = self.cache.stats();
        ServeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            busy_rejections: self.counters.busy.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.inflight.coalesced(),
            evictions,
            cache_entries: entries,
            cache_bytes: bytes,
        }
    }
}

/// A running server. Obtained from [`serve`]; dropped or
/// [`wait`](ServerHandle::wait)ed to completion.
pub struct ServerHandle {
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the serving counters (the `Stats` opcode, without
    /// a round trip — used by the in-process bench harness).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }

    /// Triggers shutdown from the hosting process (equivalent to a
    /// `Shutdown` frame).
    pub fn shutdown(&self) {
        begin_shutdown(&self.state, self.local_addr);
    }

    /// Blocks until the server has shut down: the acceptor has exited
    /// and every accepted request has been answered. Returns the final
    /// counters.
    #[must_use]
    pub fn wait(mut self) -> ServeStats {
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().expect("acceptor does not panic");
        }
        // Drain: every accepted job decrements `active_jobs` after its
        // reply is queued, and every queued reply decrements
        // `pending_replies` once written to the socket — so when both
        // are zero, all accepted work is answered AND flushed.
        while self.state.counters.active_jobs.load(Ordering::SeqCst) > 0
            || self.state.counters.pending_replies.load(Ordering::SeqCst) > 0
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        self.state.stats()
    }
}

/// Flags shutdown and unblocks the acceptor with a wake-up connection.
fn begin_shutdown(state: &ServerState, addr: SocketAddr) {
    if !state.shutting_down.swap(true, Ordering::SeqCst) {
        // The acceptor blocks in `accept`; a throwaway connection makes
        // it re-check the flag. Failure is fine (acceptor already gone).
        let _ = TcpStream::connect(addr);
    }
}

/// Binds and starts the serving runtime.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        request_pool: WorkerPool::with_queue_limit(config.workers.max(1), config.queue_limit),
        engine_pool: Arc::new(WorkerPool::new(config.engine_threads.max(1))),
        cache: DistCache::new(config.cache_mb.saturating_mul(1024 * 1024)),
        inflight: InFlight::new(),
        counters: RuntimeCounters::default(),
        shutting_down: AtomicBool::new(false),
    });
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("hammer-serve-accept".into())
            .spawn(move || accept_loop(&listener, &state))
            .expect("acceptor thread spawns")
    };
    Ok(ServerHandle {
        local_addr,
        acceptor: Some(acceptor),
        state,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    loop {
        if state.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutting_down.load(Ordering::SeqCst) {
                    return; // the wake-up connection, or a late client
                }
                let state = Arc::clone(state);
                let addr = listener
                    .local_addr()
                    .expect("bound listener has an address");
                // Readers are detached: they exit on client EOF (or
                // after relaying Shutdown). `wait` tracks *jobs*, not
                // connections, so an idle open connection never blocks
                // shutdown.
                let _ = std::thread::Builder::new()
                    .name("hammer-serve-conn".into())
                    .spawn(move || connection_loop(stream, &state, addr));
            }
            Err(_) => {
                // Transient accept failure; keep serving.
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    }
}

/// The per-connection reader: parses frames, answers cheap opcodes
/// inline, and queues compute opcodes onto the bounded request pool.
/// Replies flow through an mpsc channel to a dedicated writer thread,
/// so slow computations never block the read side and out-of-order
/// completion is fine (the request id disambiguates).
fn connection_loop(stream: TcpStream, state: &Arc<ServerState>, addr: SocketAddr) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (raw_tx, reply_rx) = mpsc::channel::<(u64, Reply)>();
    let writer = {
        let state = Arc::clone(state);
        std::thread::Builder::new()
            .name("hammer-serve-write".into())
            .spawn(move || {
                let mut w = BufWriter::new(write_half);
                let mut broken = false;
                // Keep draining after a write failure: every queued
                // reply must still decrement `pending_replies` or
                // shutdown would wait forever on a dead client.
                while let Ok((id, reply)) = reply_rx.recv() {
                    if !broken && write_frame(&mut w, id, reply.opcode(), &reply.encode()).is_err()
                    {
                        broken = true;
                    }
                    state
                        .counters
                        .pending_replies
                        .fetch_sub(1, Ordering::SeqCst);
                }
            })
            .expect("writer thread spawns")
    };
    // Every queued reply is pre-counted so `wait` can see it before the
    // writer picks it up.
    let reply_tx = {
        let state = Arc::clone(state);
        move |message: (u64, Reply)| {
            state
                .counters
                .pending_replies
                .fetch_add(1, Ordering::SeqCst);
            if raw_tx.send(message).is_err() {
                // Writer gone (unreachable while a sender lives, but do
                // not leak the pre-count if it ever happens).
                state
                    .counters
                    .pending_replies
                    .fetch_sub(1, Ordering::SeqCst);
            }
        }
    };

    let mut read_half = stream;
    loop {
        let (id, op, payload) = match read_frame(&mut read_half) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => break, // EOF or dead peer
            Err(_) => {
                // Framing is unrecoverable mid-stream: report and drop.
                reply_tx((0, Reply::Error("malformed frame".into())));
                break;
            }
        };
        // A shut-down server closes surviving connections instead of
        // answering on them: the peer sees EOF and (re)connects
        // elsewhere. In-flight replies still drain through the writer.
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let request = match Request::decode(op, &payload) {
            Ok(request) => request,
            Err(e) => {
                reply_tx((id, Reply::Error(e.to_string())));
                continue;
            }
        };
        match request {
            Request::Ping => {
                reply_tx((id, Reply::Pong));
            }
            Request::Stats => {
                reply_tx((id, Reply::Stats(state.stats())));
            }
            Request::Shutdown => {
                reply_tx((id, Reply::ShutdownAck));
                begin_shutdown(state, addr);
                break;
            }
            compute @ (Request::Reconstruct { .. }
            | Request::Metrics { .. }
            | Request::SampleAndReconstruct(_)) => {
                // Count the job BEFORE re-checking the shutdown flag:
                // `wait` trusts `active_jobs`, so the increment must be
                // visible before a concurrent `wait` could observe
                // "nothing pending". If shutdown began in the meantime,
                // back the count out and refuse — never submit work a
                // completed `wait` would no longer cover.
                state.counters.active_jobs.fetch_add(1, Ordering::SeqCst);
                if state.shutting_down.load(Ordering::SeqCst) {
                    state.counters.active_jobs.fetch_sub(1, Ordering::SeqCst);
                    state.counters.busy.fetch_add(1, Ordering::Relaxed);
                    reply_tx((id, Reply::Busy));
                    continue;
                }
                let job_state = Arc::clone(state);
                let job_tx = reply_tx.clone();
                let submitted = state.request_pool.try_submit(move || {
                    let reply = handle_compute(&job_state, compute);
                    job_tx((id, reply));
                    job_state
                        .counters
                        .active_jobs
                        .fetch_sub(1, Ordering::SeqCst);
                });
                if submitted.is_err() {
                    state.counters.active_jobs.fetch_sub(1, Ordering::SeqCst);
                    state.counters.busy.fetch_add(1, Ordering::Relaxed);
                    reply_tx((id, Reply::Busy));
                }
            }
        }
    }
    drop(reply_tx);
    // Jobs still in flight hold their own senders; the writer exits
    // once the last one completes. Join so the writer cannot outlive
    // the data it flushes.
    let _ = writer.join();
}

/// Executes one compute request on a pool worker.
fn handle_compute(state: &Arc<ServerState>, request: Request) -> Reply {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    match request {
        Request::Reconstruct { config, counts } => {
            if counts.is_empty() {
                return Reply::Error("empty histogram has no distribution".into());
            }
            let mut key = Fnv1a::new();
            key.write_bytes(b"reconstruct/v1");
            key.write_u64(counts.fingerprint());
            key.write_u64(config.fingerprint());
            // The job itself runs on the *request* pool; the engine
            // pool is distinct, so handing it to Hammer for ANN tree
            // builds cannot nest a fan_out on the pool we run on.
            let engine_pool = Arc::clone(&state.engine_pool);
            cached_compute(state, key.finish(), move || {
                Ok(Hammer::with_config(config)
                    .with_pool(engine_pool)
                    .reconstruct_counts(&counts))
            })
        }
        Request::SampleAndReconstruct(job) => {
            let key = job.fingerprint();
            let engine_pool = Arc::clone(&state.engine_pool);
            cached_compute(state, key, move || run_sample_job(&job, &engine_pool))
        }
        Request::Metrics { dist, correct } => {
            if correct.is_empty() {
                return Reply::Error("empty correct-outcome set".into());
            }
            if let Some(bad) = correct.iter().find(|x| x.len() != dist.n_bits()) {
                return Reply::Error(format!(
                    "correct outcome width {} does not match distribution width {}",
                    bad.len(),
                    dist.n_bits()
                ));
            }
            Reply::Metrics(crate::codec::MetricsReply {
                pst: metrics::pst(&dist, &correct),
                ist: metrics::ist(&dist, &correct),
                ehd: metrics::ehd(&dist, &correct),
                uniform_ehd: metrics::uniform_ehd(dist.n_bits()),
            })
        }
        Request::Ping | Request::Stats | Request::Shutdown => {
            unreachable!("cheap opcodes are answered inline by the reader")
        }
    }
}

/// The cache + coalescing discipline around one computation.
fn cached_compute<F>(state: &Arc<ServerState>, key: u64, compute: F) -> Reply
where
    F: FnOnce() -> Result<Distribution, String>,
{
    if let Some(hit) = state.cache.get(key) {
        return Reply::Distribution((*hit).clone());
    }
    match state.inflight.claim(key) {
        Claim::Leader => {
            // A racing leader may have completed between our cache probe
            // and our claim; serve its entry rather than recompute.
            // (`get` counted our probe as the miss; this probe would
            // count a hit, which is accurate — the entry IS there.)
            let result: ComputeResult = if let Some(hit) = state.cache.get(key) {
                Ok(hit)
            } else {
                state.cache.note_miss();
                match catch_unwind(AssertUnwindSafe(compute)) {
                    Ok(Ok(dist)) => {
                        let dist = Arc::new(dist);
                        state.cache.insert(key, Arc::clone(&dist));
                        Ok(dist)
                    }
                    Ok(Err(msg)) => Err(msg),
                    Err(_) => Err("computation panicked".into()),
                }
            };
            state.inflight.publish(key, result.clone());
            reply_of(result)
        }
        follower @ Claim::Follower(_) => reply_of(follower.wait()),
    }
}

fn reply_of(result: ComputeResult) -> Reply {
    match result {
        Ok(dist) => Reply::Distribution((*dist).clone()),
        Err(msg) => Reply::Error(msg),
    }
}

/// Runs one simulate-then-reconstruct job on the shared engine pool.
fn run_sample_job(job: &SampleJob, engine_pool: &Arc<WorkerPool>) -> Result<Distribution, String> {
    use rand::SeedableRng;
    let device = job.device.to_device()?;
    if job.trials == 0 {
        return Err("zero trials".into());
    }
    if job.trials > 10_000_000 {
        return Err(format!("trial budget {} exceeds the 10M cap", job.trials));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(job.seed);
    let counts = AutoEngine::new(&device)
        .with_pool(Arc::clone(engine_pool))
        .sample(&job.circuit, job.trials, &mut rng)
        .map_err(|e| e.to_string())?;
    Ok(Hammer::with_config(job.config)
        .with_pool(Arc::clone(engine_pool))
        .reconstruct_counts(&counts))
}

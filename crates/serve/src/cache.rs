//! The batching + caching core: a sharded LRU cache of completed
//! [`Distribution`]s plus an in-flight map that coalesces concurrent
//! identical requests onto one computation.
//!
//! Both structures key on the stable `u64` fingerprints of the request
//! content (see [`hammer_dist::fingerprint`]): `Reconstruct` keys on
//! `(counts, config)`, `SampleAndReconstruct` on
//! `(circuit, device, trials, seed, config)`. The flow per request:
//!
//! 1. probe the cache — a hit returns immediately;
//! 2. claim the key in the in-flight map — the **leader** (first
//!    claimant) computes, inserts into the cache, and publishes the
//!    result; **followers** block on the leader's slot and receive the
//!    published value without computing (`coalesced` counter);
//! 3. eviction is per-shard LRU under an approximate byte budget.
//!
//! Every counter the `Stats` opcode reports lives here (plus the
//! request/busy tallies kept by the server runtime).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use hammer_dist::Distribution;

/// Shard count: fingerprints are well-mixed, so a modest fixed fan-out
/// removes lock contention without a tuning knob.
const SHARDS: usize = 16;

/// Approximate heap footprint of a cached distribution: the AoS entries
/// (16 B) plus the three SoA mirror arrays (8 B each) per element, plus
/// a fixed struct overhead.
fn approx_bytes(d: &Distribution) -> usize {
    96 + d.len() * (16 + 8 + 8 + 8)
}

/// An entry evicted under memory pressure, handed back to the caller
/// so the serving runtime can demote it to the persistent spill tier
/// instead of discarding it: `(key, flags, value)`. Flags are the
/// store's record flags (e.g. [`crate::store::FLAG_APPROX`]).
pub type Evicted = (u64, u8, Arc<Distribution>);

/// One LRU shard: the value map plus a recency index keyed by a
/// monotone per-shard tick.
#[derive(Default)]
struct Shard {
    /// key → (value, last-touch tick, approximate bytes, record flags).
    map: HashMap<u64, (Arc<Distribution>, u64, usize, u8)>,
    /// last-touch tick → key (unique: ticks only move forward).
    recency: std::collections::BTreeMap<u64, u64>,
    tick: u64,
    bytes: usize,
}

impl Shard {
    fn touch(&mut self, key: u64) -> Option<Arc<Distribution>> {
        let next_tick = self.tick + 1;
        let (value, tick, _, _) = self.map.get_mut(&key)?;
        let old = std::mem::replace(tick, next_tick);
        self.tick = next_tick;
        self.recency.remove(&old);
        self.recency.insert(next_tick, key);
        Some(Arc::clone(value))
    }

    fn insert(
        &mut self,
        key: u64,
        value: Arc<Distribution>,
        flags: u8,
        budget: usize,
    ) -> Vec<Evicted> {
        let bytes = approx_bytes(&value);
        self.tick += 1;
        if let Some((_, old_tick, old_bytes, _)) =
            self.map.insert(key, (value, self.tick, bytes, flags))
        {
            self.recency.remove(&old_tick);
            self.bytes -= old_bytes;
        }
        self.recency.insert(self.tick, key);
        self.bytes += bytes;
        // Evict least-recently-used entries until we fit, but never the
        // entry just inserted (a budget smaller than one entry would
        // otherwise thrash forever). Evicted entries are returned, not
        // dropped: the caller demotes them to the spill tier.
        let mut evicted = Vec::new();
        while self.bytes > budget && self.map.len() > 1 {
            let (&lru_tick, &lru_key) = self.recency.iter().next().expect("non-empty recency");
            if lru_key == key {
                break;
            }
            self.recency.remove(&lru_tick);
            let (value, _, freed, fl) = self.map.remove(&lru_key).expect("recency maps into map");
            self.bytes -= freed;
            evicted.push((lru_key, fl, value));
        }
        evicted
    }
}

/// The sharded LRU cache with hit/miss/eviction counters.
///
/// The counters are [`hammer_obs::Counter`] handles: built via
/// [`DistCache::with_registry`] they appear in the server's metrics
/// snapshot under `serve.cache.*`; built via [`DistCache::new`] they
/// are detached cells with identical semantics.
pub struct DistCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    hits: hammer_obs::Counter,
    misses: hammer_obs::Counter,
    evictions: hammer_obs::Counter,
}

impl DistCache {
    /// A cache bounded by `capacity_bytes` (approximate, split evenly
    /// across shards; at least one entry per shard always fits), with
    /// detached (unregistered) counters.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: capacity_bytes / SHARDS,
            hits: hammer_obs::Counter::detached(),
            misses: hammer_obs::Counter::detached(),
            evictions: hammer_obs::Counter::detached(),
        }
    }

    /// [`DistCache::new`], with the counters registered on `registry`
    /// as `serve.cache.{hits,misses,evictions}`.
    #[must_use]
    pub fn with_registry(capacity_bytes: usize, registry: &hammer_obs::Registry) -> Self {
        Self {
            hits: registry.counter("serve.cache.hits"),
            misses: registry.counter("serve.cache.misses"),
            evictions: registry.counter("serve.cache.evictions"),
            ..Self::new(capacity_bytes)
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[fold(key) % SHARDS]
    }

    /// Looks a key up, counting a hit and refreshing recency.
    ///
    /// Probe misses are **not** counted here: with request coalescing,
    /// several concurrent requests can probe-miss the same key while
    /// only one computes. The miss counter tracks *computations*, which
    /// only the in-flight leader knows — it calls
    /// [`note_miss`](DistCache::note_miss) when it actually starts one,
    /// so `misses == underlying computations` holds exactly.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<Distribution>> {
        let found = self.shard(key).lock().expect("shard unpoisoned").touch(key);
        if found.is_some() {
            self.hits.inc();
        }
        found
    }

    /// Records one cache miss (= one underlying computation started).
    pub fn note_miss(&self) {
        self.misses.inc();
    }

    /// Inserts a completed distribution, evicting LRU entries past the
    /// shard budget. Evicted entries are returned (outside any shard
    /// lock concern — the caller holds only Arcs) so the serving
    /// runtime can demote them to the persistent spill tier.
    pub fn insert(&self, key: u64, value: Arc<Distribution>, flags: u8) -> Vec<Evicted> {
        let evicted = self.shard(key).lock().expect("shard unpoisoned").insert(
            key,
            value,
            flags,
            self.shard_budget,
        );
        if !evicted.is_empty() {
            self.evictions.add(evicted.len() as u64);
        }
        evicted
    }

    /// A snapshot of every resident entry, coldest first within each
    /// shard — the flush order for a graceful shutdown that wants the
    /// whole hot set (not just past evictions) in the spill tier, with
    /// the hottest entries written last so they supersede on replay.
    #[must_use]
    pub fn entries(&self) -> Vec<Evicted> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.lock().expect("shard unpoisoned");
            // The recency index iterates coldest-to-hottest already.
            for &key in s.recency.values() {
                if let Some((value, _, _, flags)) = s.map.get(&key) {
                    out.push((key, *flags, Arc::clone(value)));
                }
            }
        }
        out
    }

    /// `(hits, misses, evictions, entries, bytes)` snapshot.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in &self.shards {
            let s = shard.lock().expect("shard unpoisoned");
            entries += s.map.len() as u64;
            bytes += s.bytes as u64;
        }
        (
            self.hits.get(),
            self.misses.get(),
            self.evictions.get(),
            entries,
            bytes,
        )
    }
}

/// XOR-folds a fingerprint down to a small shard selector.
///
/// Selecting on `key >> 60` alone looked safe ("FNV's high bits are
/// stable") but FNV-1a's *avalanche is weakest in the high bits* — its
/// multiply only carries entropy upward, and over real request streams
/// the top nibble is measurably skewed, concentrating entries (and lock
/// contention, and LRU pressure) on a few shards. Folding every bit of
/// the fingerprint into the selector restores the near-uniform spread
/// the per-shard byte budget assumes; the balance test below pins it.
#[inline]
fn fold(key: u64) -> usize {
    let mut x = key;
    x ^= x >> 32;
    x ^= x >> 16;
    x ^= x >> 8;
    x ^= x >> 4;
    x as usize
}

/// Why a leader failed to produce a distribution.
///
/// The distinction matters to followers: a [`Failed`](Self::Failed)
/// request is deterministically bad (same inputs would fail again), but
/// [`Cancelled`](Self::Cancelled) and [`Panicked`](Self::Panicked) are
/// leader-specific misfortunes — the *leader's* deadline fired, or the
/// *leader's* worker died — so a follower with time left re-claims the
/// key and computes for itself instead of inheriting the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputeError {
    /// The request itself is bad; retrying cannot help.
    Failed(String),
    /// The leader's cancel token (deadline) fired mid-compute.
    Cancelled,
    /// The leader panicked (or died before publishing).
    Panicked(String),
}

impl ComputeError {
    /// Whether a follower should re-claim and compute for itself
    /// rather than inherit this failure.
    #[must_use]
    pub fn is_leader_specific(&self) -> bool {
        matches!(self, Self::Cancelled | Self::Panicked(_))
    }
}

/// The value published through an in-flight slot: the computed
/// distribution, or the leader's failure (relayed to every coalesced
/// follower).
pub type ComputeResult = Result<Arc<Distribution>, ComputeError>;

/// One in-flight computation: followers block on the condvar until the
/// leader publishes.
pub struct Slot {
    done: Mutex<Option<ComputeResult>>,
    ready: Condvar,
}

/// What [`InFlight::claim`] hands back.
pub enum Claim {
    /// This caller computes; it **must** call [`InFlight::publish`]
    /// exactly once (even on failure) or followers hang.
    Leader,
    /// Another caller is already computing the same key; wait on it.
    Follower(Arc<Slot>),
}

/// The in-flight request-coalescing map.
#[derive(Default)]
pub struct InFlight {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
    coalesced: hammer_obs::Counter,
}

impl InFlight {
    /// An empty map with a detached coalesce counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map whose coalesce counter is registered on `registry`
    /// as `serve.coalesced`.
    #[must_use]
    pub fn with_registry(registry: &hammer_obs::Registry) -> Self {
        Self {
            coalesced: registry.counter("serve.coalesced"),
            ..Self::new()
        }
    }

    /// Requests that found a leader to ride on instead of computing.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.get()
    }

    /// Claims a key: the first claimant becomes the leader, everyone
    /// else a follower of its slot.
    #[must_use]
    pub fn claim(&self, key: u64) -> Claim {
        let mut slots = self.slots.lock().expect("in-flight map unpoisoned");
        if let Some(slot) = slots.get(&key) {
            self.coalesced.inc();
            return Claim::Follower(Arc::clone(slot));
        }
        slots.insert(
            key,
            Arc::new(Slot {
                done: Mutex::new(None),
                ready: Condvar::new(),
            }),
        );
        Claim::Leader
    }

    /// Publishes the leader's result: wakes every follower and retires
    /// the slot (later requests probe the cache or start fresh).
    pub fn publish(&self, key: u64, result: ComputeResult) {
        let slot = self
            .slots
            .lock()
            .expect("in-flight map unpoisoned")
            .remove(&key)
            .expect("publish pairs with a leader claim");
        *slot.done.lock().expect("slot unpoisoned") = Some(result);
        slot.ready.notify_all();
    }

    /// Arms a publish-on-drop guard for a freshly claimed leadership.
    ///
    /// The central liveness invariant of coalescing is "a leader always
    /// publishes": any exit path that skips [`publish`](Self::publish)
    /// — a panic between claim and publish, an early return — leaves
    /// every follower parked on the condvar forever. The guard makes
    /// that impossible: if it drops without an explicit
    /// [`PublishGuard::publish`], it publishes
    /// [`ComputeError::Panicked`] on the leader's behalf, so followers
    /// always wake (and then typically re-lead).
    #[must_use]
    pub fn publish_guard(&self, key: u64) -> PublishGuard<'_> {
        PublishGuard {
            inflight: self,
            key,
            published: false,
        }
    }
}

/// The leader's publish-exactly-once obligation as an RAII object; see
/// [`InFlight::publish_guard`].
pub struct PublishGuard<'a> {
    inflight: &'a InFlight,
    key: u64,
    published: bool,
}

impl PublishGuard<'_> {
    /// Publishes the leader's result (consuming the guard, so the drop
    /// fallback cannot double-publish).
    pub fn publish(mut self, result: ComputeResult) {
        self.published = true;
        self.inflight.publish(self.key, result);
    }
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.inflight.publish(
                self.key,
                Err(ComputeError::Panicked(
                    "leader died before publishing".into(),
                )),
            );
        }
    }
}

impl Claim {
    /// Follower side: blocks until the leader publishes.
    ///
    /// # Panics
    ///
    /// Panics if called on a [`Claim::Leader`].
    pub fn wait(self) -> ComputeResult {
        let Claim::Follower(slot) = self else {
            panic!("wait() is the follower path; leaders compute and publish");
        };
        let mut done = slot.done.lock().expect("slot unpoisoned");
        loop {
            if let Some(result) = done.clone() {
                return result;
            }
            done = slot
                .ready
                .wait(done)
                .expect("slot unpoisoned while waiting");
        }
    }

    /// Follower side with a deadline: blocks until the leader publishes
    /// or `deadline` passes, whichever is first. `None` means the
    /// follower's own time budget ran out (the leader keeps computing —
    /// its result still lands in the cache for everyone else).
    ///
    /// With no deadline this is exactly [`wait`](Claim::wait).
    ///
    /// # Panics
    ///
    /// Panics if called on a [`Claim::Leader`].
    #[must_use]
    pub fn wait_until(self, deadline: Option<std::time::Instant>) -> Option<ComputeResult> {
        let Some(deadline) = deadline else {
            return Some(self.wait());
        };
        let Claim::Follower(slot) = self else {
            panic!("wait_until() is the follower path; leaders compute and publish");
        };
        let mut done = slot.done.lock().expect("slot unpoisoned");
        loop {
            if let Some(result) = done.clone() {
                return Some(result);
            }
            let budget = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, timeout) = slot
                .ready
                .wait_timeout(done, budget)
                .expect("slot unpoisoned while waiting");
            done = guard;
            if timeout.timed_out() && done.is_none() {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_dist::BitString;

    fn dist(tag: u64) -> Arc<Distribution> {
        Arc::new(
            Distribution::from_probs(
                8,
                [
                    (BitString::new(tag % 251, 8), 0.5),
                    (BitString::new((tag + 1) % 251, 8), 0.5),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = DistCache::new(1 << 20);
        assert!(cache.get(42).is_none());
        cache.note_miss();
        cache.insert(42, dist(0), 0);
        let hit = cache.get(42).expect("present");
        assert_eq!(*hit, *dist(0));
        let (hits, misses, evictions, entries, bytes) = cache.stats();
        assert_eq!((hits, misses, evictions, entries), (1, 1, 0, 1));
        assert!(bytes > 0);
    }

    #[test]
    fn lru_evicts_the_coldest_key_under_pressure() {
        // Budget fits ~2 entries per shard; keys chosen to land in ONE
        // shard so the LRU order is observable.
        let per_entry = approx_bytes(&dist(0));
        let cache = DistCache::new(per_entry * 2 * SHARDS + SHARDS);
        let same_shard: Vec<u64> = (0u64..)
            .filter(|&k| fold(k) % SHARDS == fold(0) % SHARDS)
            .take(4)
            .collect();
        let key = |i: u64| same_shard[i as usize];
        cache.insert(key(1), dist(1), 0);
        cache.insert(key(2), dist(2), 0);
        // Touch 1 so 2 becomes the LRU.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), dist(3), 0);
        assert!(cache.get(key(2)).is_none(), "LRU key evicted");
        assert!(cache.get(key(1)).is_some(), "recently-touched key kept");
        assert!(cache.get(key(3)).is_some(), "new key kept");
        let (_, _, evictions, entries, _) = cache.stats();
        assert_eq!(evictions, 1);
        assert_eq!(entries, 2);
    }

    #[test]
    fn eviction_hands_back_the_entry_for_the_spill_tier() {
        let per_entry = approx_bytes(&dist(0));
        let cache = DistCache::new(per_entry * 2 * SHARDS + SHARDS);
        let same_shard: Vec<u64> = (0u64..)
            .filter(|&k| fold(k) % SHARDS == fold(0) % SHARDS)
            .take(3)
            .collect();
        assert!(cache.insert(same_shard[0], dist(1), 7).is_empty());
        assert!(cache.insert(same_shard[1], dist(2), 0).is_empty());
        let evicted = cache.insert(same_shard[2], dist(3), 0);
        // The coldest entry comes back with its key, flags and value
        // intact — exactly what a spill to disk needs.
        assert_eq!(evicted.len(), 1);
        let (key, flags, value) = &evicted[0];
        assert_eq!((*key, *flags), (same_shard[0], 7));
        assert_eq!(**value, *dist(1));
        // entries() snapshots the survivors, coldest first.
        let resident = cache.entries();
        assert_eq!(resident.len(), 2);
        assert_eq!(resident[0].0, same_shard[1]);
        assert_eq!(resident[1].0, same_shard[2]);
    }

    #[test]
    fn shard_selection_spreads_real_fingerprints_evenly() {
        use hammer_dist::fingerprint::Fnv1a;
        // 16K distinct request-shaped FNV-1a fingerprints (the exact
        // hasher every request key goes through). A balanced selector
        // keeps every shard within ±25% of the uniform share; the old
        // top-nibble selector concentrated the same stream onto a few
        // shards.
        const N: usize = 16_384;
        let mut counts = [0usize; SHARDS];
        for i in 0..N {
            let mut h = Fnv1a::new();
            h.write_u8(1); // opcode tag, as real request keys do
            h.write_usize(i);
            h.write_u64(0xC0DE ^ i as u64);
            h.write_f64(i as f64 * 0.125);
            counts[fold(h.finish()) % SHARDS] += 1;
        }
        let share = N / SHARDS;
        let (lo, hi) = (share * 3 / 4, share * 5 / 4);
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (lo..=hi).contains(&c),
                "shard {s} holds {c} of {N} keys (uniform share {share}): {counts:?}"
            );
        }
    }

    #[test]
    fn tiny_budget_never_evicts_the_entry_just_inserted() {
        let cache = DistCache::new(1); // less than one entry
        cache.insert(7, dist(7), 0);
        assert!(cache.get(7).is_some(), "sole entry survives");
        cache.insert(9, dist(9), 0);
        assert!(cache.get(9).is_some(), "newest entry survives");
    }

    #[test]
    fn reinserting_a_key_replaces_without_leaking_bytes() {
        let cache = DistCache::new(1 << 20);
        cache.insert(5, dist(1), 0);
        let (_, _, _, _, bytes_once) = cache.stats();
        cache.insert(5, dist(2), 0);
        let (_, _, _, entries, bytes_twice) = cache.stats();
        assert_eq!(entries, 1);
        assert_eq!(bytes_once, bytes_twice);
    }

    #[test]
    fn followers_receive_the_leaders_result() {
        let inflight = Arc::new(InFlight::new());
        let Claim::Leader = inflight.claim(11) else {
            panic!("first claim leads");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let inflight = Arc::clone(&inflight);
                std::thread::spawn(move || match inflight.claim(11) {
                    Claim::Leader => panic!("key already claimed"),
                    follower @ Claim::Follower(_) => follower.wait(),
                })
            })
            .collect();
        // Give followers time to park, then publish.
        while inflight.coalesced() < 4 {
            std::thread::yield_now();
        }
        inflight.publish(11, Ok(dist(11)));
        for f in followers {
            let result = f.join().unwrap().expect("leader succeeded");
            assert_eq!(*result, *dist(11));
        }
        assert_eq!(inflight.coalesced(), 4);
        // The slot retired: the next claim leads again.
        assert!(matches!(inflight.claim(11), Claim::Leader));
        inflight.publish(11, Err(ComputeError::Failed("cleanup".into())));
    }

    #[test]
    fn leader_errors_propagate_to_followers() {
        let inflight = Arc::new(InFlight::new());
        assert!(matches!(inflight.claim(3), Claim::Leader));
        let follower = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || match inflight.claim(3) {
                Claim::Leader => panic!("key already claimed"),
                follower @ Claim::Follower(_) => follower.wait(),
            })
        };
        while inflight.coalesced() < 1 {
            std::thread::yield_now();
        }
        inflight.publish(3, Err(ComputeError::Failed("boom".into())));
        assert_eq!(
            follower.join().unwrap(),
            Err(ComputeError::Failed("boom".into()))
        );
    }

    #[test]
    fn a_dropped_publish_guard_wakes_followers_with_panicked() {
        let inflight = Arc::new(InFlight::new());
        assert!(matches!(inflight.claim(17), Claim::Leader));
        let follower = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || match inflight.claim(17) {
                Claim::Leader => panic!("key already claimed"),
                follower @ Claim::Follower(_) => follower.wait(),
            })
        };
        while inflight.coalesced() < 1 {
            std::thread::yield_now();
        }
        // The leader "dies": its guard drops without publishing.
        drop(inflight.publish_guard(17));
        let got = follower.join().unwrap();
        assert!(
            matches!(got, Err(ComputeError::Panicked(_))),
            "follower saw {got:?}"
        );
        // The slot retired, so the follower could now re-lead.
        assert!(matches!(inflight.claim(17), Claim::Leader));
        inflight.publish(17, Err(ComputeError::Failed("cleanup".into())));
    }

    #[test]
    fn wait_until_times_out_while_the_leader_is_still_computing() {
        use std::time::{Duration, Instant};
        let inflight = Arc::new(InFlight::new());
        assert!(matches!(inflight.claim(23), Claim::Leader));
        let follower @ Claim::Follower(_) = inflight.claim(23) else {
            panic!("second claim follows");
        };
        let start = Instant::now();
        let got = follower.wait_until(Some(Instant::now() + Duration::from_millis(30)));
        assert!(got.is_none(), "timed-out wait yields None");
        assert!(start.elapsed() >= Duration::from_millis(25));
        inflight.publish(23, Err(ComputeError::Failed("cleanup".into())));
    }
}

//! End-to-end tests of the HTTP exposition listener: a real server on
//! ephemeral ports, real scrapes over TCP, `/metrics` agreeing with a
//! concurrent `MetricsSnapshot`, and a latency SLO driven into
//! violation firing a burn-rate alert within two rollup windows.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use hammer_core::HammerConfig;
use hammer_dist::{BitString, Counts};
use hammer_obs::{SeriesValue, SloSpec};
use hammer_serve::{serve, ServeClient, ServeConfig, ServerHandle};

fn start(slos: Vec<SloSpec>, rollup_window_ms: u64) -> ServerHandle {
    serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        metrics_addr: Some("127.0.0.1:0".into()),
        rollup_window_ms,
        slos,
        workers: 2,
        cache_mb: 4,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral ports")
}

/// One `GET` against the exposition listener; returns (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect exposition listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let response = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_owned())
}

/// A small histogram whose reconstruction exercises the full pipeline;
/// `salt` defeats the reply cache so every request computes.
fn job_counts(salt: u64) -> Counts {
    let mut counts = Counts::new(4).unwrap();
    counts.record_n(BitString::parse("1111").unwrap(), 100 + salt);
    counts.record_n(BitString::parse("0000").unwrap(), 80);
    counts.record_n(BitString::parse("1110").unwrap(), 20);
    counts
}

/// `hammer_serve_requests 7` lines of a scrape, keyed by sample name.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .filter_map(|l| {
            let (name, value) = l.rsplit_once(' ')?;
            Some((name.to_owned(), value.parse().ok()?))
        })
        .collect()
}

/// `serve.stage.decode_ns` → `hammer_serve_stage_decode_ns`.
fn mangle(name: &str) -> String {
    let mut out = String::from("hammer_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

#[test]
fn metrics_scrape_agrees_with_concurrent_snapshot() {
    let server = start(Vec::new(), 200);
    let metrics = server.metrics_addr().expect("exposition listener up");
    {
        let mut client = ServeClient::connect(server.local_addr().to_string()).unwrap();
        for salt in 0..5 {
            client
                .reconstruct(&job_counts(salt), &HammerConfig::paper())
                .expect("reconstruct");
        }
    }
    // The client is gone; once the per-server series stop moving, a
    // scrape and a snapshot bracket the same instant.
    let observer = server.observer();
    let mut agreed = false;
    for _ in 0..50 {
        let before = observer.obs_snapshot();
        let (status, text) = http_get(metrics, "/metrics");
        assert_eq!(status, 200);
        let after = observer.obs_snapshot();
        let serve_only = |snap: &hammer_obs::MetricsSnapshot| -> Vec<(String, String)> {
            snap.series
                .iter()
                .filter(|s| s.name.starts_with("serve."))
                .map(|s| (s.name.clone(), format!("{:?}", s.value)))
                .collect()
        };
        if serve_only(&before) != serve_only(&after) {
            std::thread::sleep(Duration::from_millis(50));
            continue;
        }
        let scraped = parse_exposition(&text);
        for s in after.series.iter().filter(|s| s.name.starts_with("serve.")) {
            let mangled = mangle(&s.name);
            match &s.value {
                SeriesValue::Counter(v) => {
                    assert_eq!(
                        scraped.get(&mangled).copied(),
                        Some(*v as f64),
                        "counter {} disagrees with the snapshot",
                        s.name
                    );
                }
                SeriesValue::Gauge(v) => {
                    assert_eq!(
                        scraped.get(&mangled).copied(),
                        Some(*v as f64),
                        "gauge {} disagrees with the snapshot",
                        s.name
                    );
                }
                SeriesValue::Histogram(h) => {
                    assert_eq!(
                        scraped.get(&format!("{mangled}_count")).copied(),
                        Some(h.count() as f64),
                        "histogram {} count disagrees with the snapshot",
                        s.name
                    );
                    // Cumulative buckets end at the total.
                    let inf = format!("{mangled}_bucket{{le=\"+Inf\"}}");
                    assert_eq!(scraped.get(&inf).copied(), Some(h.count() as f64));
                }
            }
        }
        // Sanity of the format itself on a known-hot series.
        assert!(text.contains("# TYPE hammer_serve_requests counter"));
        assert!(text.contains("# TYPE hammer_serve_request_ns histogram"));
        assert!(scraped[&mangle("serve.requests")] >= 5.0);
        agreed = true;
        break;
    }
    assert!(agreed, "per-server series never went quiescent");
    let mut client = ServeClient::connect(server.local_addr().to_string()).unwrap();
    client.shutdown().unwrap();
    let _ = server.wait();
}

#[test]
fn series_events_and_healthz_endpoints_respond() {
    let server = start(Vec::new(), 100);
    let metrics = server.metrics_addr().expect("exposition listener up");
    let mut client = ServeClient::connect(server.local_addr().to_string()).unwrap();
    client
        .reconstruct(&job_counts(1000), &HammerConfig::paper())
        .expect("reconstruct");

    let (status, body) = http_get(metrics, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Wait for at least one rollup window to close (the series is 404
    // until the roller's first tick folds it in).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_get(metrics, "/series?name=serve.requests&window=1");
        if status == 200 && body.contains("\"delta\":") {
            assert!(body.contains("\"name\":\"serve.requests\""));
            assert!(body.contains("\"kind\":\"counter\""));
            break;
        }
        assert!(Instant::now() < deadline, "no rollup window closed in 10 s");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, body) = http_get(metrics, "/series");
    assert_eq!(status, 200);
    assert!(body.contains("\"serve.requests\""));
    assert!(body.contains("\"serve.request_ns\""));

    let (status, _) = http_get(metrics, "/series?name=no.such.series");
    assert_eq!(status, 404);

    let (status, body) = http_get(metrics, "/events?n=5");
    assert_eq!(status, 200);
    assert!(body.starts_with("{\"dropped\":"));

    let (status, body) = http_get(metrics, "/slo");
    assert_eq!((status, body.as_str()), (200, "{\"slos\":[]}"));

    let (status, _) = http_get(metrics, "/nope");
    assert_eq!(status, 404);

    client.shutdown().unwrap();
    let _ = server.wait();
    // The exposition port is down with the server.
    assert!(TcpStream::connect(metrics).is_err());
}

#[test]
fn violated_latency_slo_fires_within_two_windows() {
    // 100 ms windows; a 99%-of-requests-under-1ms objective over 60 s.
    let spec = SloSpec::parse("latency:fast_p99:serve.request_ns:1ms:99%:60s").expect("valid spec");
    let server = start(vec![spec], 100);
    let metrics = server.metrics_addr().expect("exposition listener up");
    hammer_serve::fault::set_slow_compute_ms(10);

    // Drive slowed requests and poll: the alert must show up while the
    // violation is only a couple of windows old.
    let mut client = ServeClient::connect(server.local_addr().to_string()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut salt = 0u64;
    let fired = loop {
        salt += 1;
        client
            .reconstruct(&job_counts(salt), &HammerConfig::paper())
            .expect("reconstruct");
        let (status, body) = http_get(metrics, "/slo");
        assert_eq!(status, 200);
        // Empty until the roller's first evaluation tick.
        if body.contains("\"name\":\"fast_p99\"") && body.contains("\"firing\":true") {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
    };
    hammer_serve::fault::reset();
    assert!(fired, "SLO never fired despite 100% violation");

    // The alert is visible as a warn event...
    let (status, body) = http_get(metrics, "/events?n=50&level=warn");
    assert_eq!(status, 200);
    assert!(
        body.contains("slo alert firing"),
        "no firing event in {body}"
    );
    // ...and as a positive burn-rate gauge (milli-burn units).
    let snap = server.observer().obs_snapshot();
    assert!(snap.gauge("serve.slo.burn_rate").unwrap_or(0) > 0);
    assert!(snap.gauge("serve.slo.fast_p99.burn_rate").unwrap_or(0) > 0);

    client.shutdown().unwrap();
    let _ = server.wait();
}

//! Observability end-to-end: trace-id propagation from client to
//! server span dump, reply headers echoing the request's trace id,
//! `MetricsSnapshot` agreeing with the legacy `Stats` counters, and the
//! chaos proxy tagging injected faults with the victim's trace id.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hammer_core::HammerConfig;
use hammer_dist::{BitString, Counts};
use hammer_obs::SeriesValue;
use hammer_serve::chaos::{ChaosProxy, Fault};
use hammer_serve::codec::TraceDumpEntry;
use hammer_serve::protocol::{self, opcode};
use hammer_serve::{serve, Request, ServeClient, ServeConfig, ServerHandle};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hammer-obs-e2e-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bs(s: &str) -> BitString {
    BitString::parse(s).unwrap()
}

fn small_counts(salt: u64) -> Counts {
    let mut counts = Counts::new(6).unwrap();
    counts.record_n(bs("111111"), 300 + salt);
    counts.record_n(bs("111101"), 90);
    counts.record_n(bs("001100"), 210);
    counts.record_n(bs("000000"), 55);
    counts
}

/// Starts a capture-everything server (slow threshold 0) with a spill
/// store, so a cold reconstruct walks every stage of the pipeline.
fn start_traced(store_dir: Option<PathBuf>) -> ServerHandle {
    serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        slow_trace_ms: 0,
        store_dir,
        store_mb: 16,
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// Polls the server's trace ring until a trace with `trace_id` shows
/// up (the writer thread finalizes a trace *after* flushing the reply,
/// so the dump can race one reply behind).
fn await_trace(client: &mut ServeClient, trace_id: u64) -> TraceDumpEntry {
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut drained = Vec::new();
    while Instant::now() < deadline {
        drained.extend(client.trace_dump().expect("trace dump"));
        if let Some(entry) = drained.iter().find(|e| e.trace_id == trace_id) {
            return entry.clone();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("trace {trace_id:#x} never reached the dump ring; got {drained:?}");
}

/// The acceptance path: a client-stamped trace id survives the wire,
/// names every pipeline stage of a cold store-miss reconstruct in
/// order, and comes back through `TraceDump`.
#[test]
fn client_trace_id_spans_the_whole_cold_reconstruct() {
    let server = start_traced(Some(scratch_dir()));
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr)
        .expect("client connects")
        .with_trace_id(0xABCD_1234);
    let dist = client
        .reconstruct(&small_counts(0), &HammerConfig::paper())
        .expect("reconstruct succeeds");
    assert!((dist.total_mass() - 1.0).abs() < 1e-9);
    assert_eq!(client.last_trace_id(), 0xABCD_1234);

    let entry = await_trace(&mut client, 0xABCD_1234);
    assert_eq!(entry.opcode, opcode::RECONSTRUCT);
    assert_eq!(entry.outcome, opcode::DISTRIBUTION);
    assert!(entry.total_ns > 0);

    // Every stage of a cold store-miss reconstruct, present and in
    // pipeline order (the span list is sorted by start time).
    let stages: Vec<&str> = entry.spans.iter().map(|s| s.stage.as_str()).collect();
    for expected in [
        "decode",
        "queue",
        "cache_probe",
        "store_load",
        "compute",
        "encode",
        "write",
    ] {
        assert!(
            stages.contains(&expected),
            "stage {expected} missing from {stages:?}"
        );
    }
    let starts: Vec<u64> = entry.spans.iter().map(|s| s.start_ns).collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "spans unsorted");
    let pos = |name: &str| stages.iter().position(|s| *s == name).unwrap();
    assert!(pos("decode") < pos("queue"));
    assert!(pos("queue") < pos("cache_probe"));
    assert!(pos("cache_probe") < pos("store_load"));
    assert!(pos("store_load") < pos("compute"));
    assert!(pos("compute") < pos("encode"));
    assert!(pos("encode") <= pos("write"));

    client.shutdown().expect("shutdown");
    let _ = server.wait();
}

/// A bare client (no pinned id) still gets traced: the server
/// generates a nonzero id at frame arrival and echoes it on the reply
/// header, where a raw reader can see it.
#[test]
fn reply_headers_echo_the_request_trace_id() {
    let server = start_traced(None);
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let request = Request::Reconstruct {
        config: HammerConfig::paper(),
        counts: small_counts(7),
    };
    protocol::write_frame_traced(
        &mut stream,
        42,
        request.opcode(),
        0,
        0xFEED_F00D,
        &request.encode(),
    )
    .expect("request written");
    let frame = protocol::read_frame_full(&mut stream).expect("reply frame");
    assert_eq!(frame.request_id, 42);
    assert_eq!(frame.opcode, opcode::DISTRIBUTION);
    assert_eq!(frame.trace_id, 0xFEED_F00D, "reply must echo the trace id");

    // Untraced opcodes reply with trace id 0.
    protocol::write_frame(&mut stream, 43, opcode::PING, &[]).expect("ping written");
    let pong = protocol::read_frame_full(&mut stream).expect("pong frame");
    assert_eq!(pong.opcode, opcode::PONG);
    assert_eq!(pong.trace_id, 0);

    server.shutdown();
    let _ = server.wait();
}

/// `MetricsSnapshot` is the registry view of the same cells `Stats`
/// reads: the migrated counters must agree exactly, the per-stage
/// histograms must have seen every request, and the process-global
/// compute-tier series must be merged in.
#[test]
fn metrics_snapshot_agrees_with_stats() {
    let server = start_traced(None);
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("client connects");
    let config = HammerConfig::paper();
    // Two identical requests: one miss, one cache hit.
    let _ = client.reconstruct(&small_counts(1), &config).expect("cold");
    let _ = client.reconstruct(&small_counts(1), &config).expect("hot");

    let stats = client.stats().expect("stats");
    let snap = client.metrics_snapshot().expect("snapshot");
    assert_eq!(snap.counter("serve.requests"), Some(stats.requests));
    assert_eq!(snap.counter("serve.cache.hits"), Some(stats.cache_hits));
    assert_eq!(snap.counter("serve.cache.misses"), Some(stats.cache_misses));
    assert_eq!(snap.counter("serve.coalesced"), Some(stats.coalesced));
    assert_eq!(
        snap.counter("serve.busy_rejections"),
        Some(stats.busy_rejections)
    );
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.cache_hits, 1);

    // Gauges were refreshed at snapshot time.
    assert_eq!(
        snap.gauge("serve.cache.entries"),
        Some(i64::try_from(stats.cache_entries).unwrap())
    );

    // Both requests crossed the request histogram; only the miss
    // computed.
    let request_hist = snap
        .histogram("serve.request_ns")
        .expect("request histogram registered");
    assert_eq!(request_hist.count(), 2);
    let compute_hist = snap
        .histogram("serve.stage.compute_ns")
        .expect("compute histogram registered");
    assert_eq!(compute_hist.count(), 1);

    // The merge brought in the process-global compute-tier series: the
    // request pool records every dequeue, the kernel every
    // reconstruction (count is cumulative across the process, so only
    // nonzero is asserted).
    let queue_wait = snap
        .histogram("pool.queue_wait_ns")
        .expect("global pool histogram merged in");
    assert!(queue_wait.count() > 0);
    let reconstruct = snap
        .histogram("core.reconstruct_ns")
        .expect("global kernel histogram merged in");
    assert!(reconstruct.count() > 0);

    // Every series decodes to a typed value.
    for series in &snap.series {
        match &series.value {
            SeriesValue::Counter(_) | SeriesValue::Gauge(_) | SeriesValue::Histogram(_) => {}
        }
    }

    client.shutdown().expect("shutdown");
    let _ = server.wait();
}

/// Satellite: the chaos proxy logs the faults it fires with the
/// victim connection's trace id, sniffed off the v3 header.
#[test]
fn chaos_proxy_tags_faults_with_the_victim_trace_id() {
    let server = start_traced(None);
    let proxy =
        ChaosProxy::spawn(server.local_addr(), vec![Fault::DelayMs(20)]).expect("proxy starts");
    let mut client = ServeClient::connect(proxy.local_addr().to_string())
        .expect("client connects via proxy")
        .with_trace_id(0xC0FF_EE00_0000_0001);
    let _ = client
        .reconstruct(&small_counts(3), &HammerConfig::paper())
        .expect("reconstruct through the proxy");

    let log = proxy.fault_log();
    assert!(!log.is_empty(), "the delay fault fired at least once");
    let event = &log[0];
    assert_eq!(event.fault, Fault::DelayMs(20));
    assert_eq!(
        event.trace_id,
        Some(0xC0FF_EE00_0000_0001),
        "proxy sniffed the pinned trace id from the frame header"
    );

    drop(proxy);
    server.shutdown();
    let _ = server.wait();
}

/// A reconstruction large enough to pin the single worker for tens of
/// milliseconds.
fn large_counts() -> Counts {
    let mut counts = Counts::new(14).unwrap();
    for i in 0..6000u64 {
        counts.record_n(
            BitString::from_u128(u128::from(i.wrapping_mul(2654) % 16384), 14),
            1 + i % 13,
        );
    }
    counts
}

/// Deadline-exceeded requests are always captured, whatever the slow
/// threshold — they are the traces an operator will come looking for.
#[test]
fn deadline_misses_are_always_captured() {
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        // Enormous threshold: nothing is "slow", so only the
        // deadline-exceeded carve-out can land a trace in the ring.
        slow_trace_ms: 1_000_000_000,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr().to_string();

    // Pin the lone worker with a long cold reconstruct, then queue a
    // short-deadline request behind it: its budget expires in the
    // queue, so it is shed at dequeue as DeadlineExceeded.
    let blocker_addr = addr.clone();
    let blocker = std::thread::spawn(move || {
        let mut c = ServeClient::connect(blocker_addr).expect("blocker connects");
        c.reconstruct(&large_counts(), &HammerConfig::paper())
            .expect("the undeadlined blocker completes")
    });
    std::thread::sleep(Duration::from_millis(20));

    let mut client = ServeClient::connect(&addr)
        .expect("client connects")
        .with_trace_id(0xDEAD_0001)
        .with_busy_retries(0, Duration::ZERO)
        .with_deadline(Some(Duration::from_millis(5)));
    let result = client.reconstruct(&small_counts(5), &HammerConfig::paper());
    assert!(result.is_err(), "a 5ms budget dies behind a pinned worker");

    let _ = blocker.join().expect("blocker thread");
    let mut probe = ServeClient::connect(&addr).expect("probe connects");
    let entry = await_trace(&mut probe, 0xDEAD_0001);
    assert_eq!(entry.outcome, opcode::DEADLINE_EXCEEDED);

    probe.shutdown().expect("shutdown");
    let _ = server.wait();
}

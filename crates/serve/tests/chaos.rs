//! The chaos suite: the serving tier under injected faults.
//!
//! Network-level faults come from [`hammer_serve::chaos::ChaosProxy`]
//! (delay, drop, truncation, corruption, half-close); compute-level
//! faults from the `fault-points` hooks (panic-on-Nth-compute,
//! slow-compute). The invariants under test:
//!
//! * no fault deadlocks the server or escapes as a panic;
//! * no follower of a coalesced computation is ever left stuck;
//! * completed replies are byte-identical to direct library calls,
//!   chaos or not;
//! * deadlines fire: an expired or too-short budget yields
//!   `DeadlineExceeded`, promptly;
//! * shutdown stays bounded with faults in flight, and requests that
//!   arrive during the drain get an in-band `ShuttingDown`.
//!
//! The in-process fault points are process-wide globals, so every test
//! that arms them (or depends on them being disarmed) serializes on
//! [`TEST_LOCK`].

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use hammer_core::{Hammer, HammerConfig};
use hammer_dist::{BitString, Counts, Distribution};
use hammer_serve::chaos::{ChaosProxy, Fault};
use hammer_serve::{
    fault, serve, DegradeConfig, ServeClient, ServeConfig, ServerHandle, WireError,
};

/// Serializes the tests sharing the process-wide fault-point globals.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Locks the suite and starts from a disarmed state, whatever a
/// previously panicked test left behind.
fn exclusive() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    fault::reset();
    guard
}

fn bs(s: &str) -> BitString {
    BitString::parse(s).unwrap()
}

/// A chaos-shaped server: short i/o timeout so slow-loris reaping is
/// observable within a test budget.
fn start(workers: usize, queue_limit: usize) -> ServerHandle {
    serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_limit,
        cache_mb: 16,
        io_timeout: Some(Duration::from_millis(400)),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// A moderately wide histogram; `salt` decorrelates cache keys.
fn chaos_counts(salt: u64) -> Counts {
    let mut counts = Counts::new(6).unwrap();
    let mut state = 0x5EED ^ salt.wrapping_mul(0x9E37_79B9);
    for i in 0..40u64 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        counts.record_n(BitString::new(state % 64, 6), 1 + (i % 9));
    }
    counts.record_n(bs("111111"), 500 + salt);
    counts
}

fn direct(counts: &Counts) -> Distribution {
    Hammer::with_config(HammerConfig::paper()).reconstruct_counts(counts)
}

/// Every network fault either completes with a byte-identical reply or
/// fails with a typed error — never a hang, never a wrong answer.
#[test]
fn faulty_networks_never_produce_wrong_answers() {
    let _guard = exclusive();
    let server = start(2, 64);
    let expected = direct(&chaos_counts(1));

    let faults = [
        Fault::None,
        Fault::DelayMs(10),
        Fault::CorruptRequestByte(2),  // clobbers the frame magic
        Fault::CorruptRequestByte(40), // clobbers payload bytes
        Fault::DropRequestAfter(8),    // mid-header stall (slow loris)
        Fault::TruncateReplyAfter(10), // client sees a cut-off reply
        Fault::HalfCloseRequestAfter(6),
    ];
    for fault_kind in faults {
        let proxy = ChaosProxy::spawn(server.local_addr(), vec![fault_kind]).expect("proxy spawns");
        let started = Instant::now();
        let mut client = ServeClient::connect(proxy.local_addr().to_string())
            .expect("connect through proxy")
            .with_io_timeout(Some(Duration::from_millis(700)))
            .with_busy_retries(0, Duration::ZERO);
        match client.reconstruct(&chaos_counts(1), &HammerConfig::paper()) {
            Ok(got) => assert_eq!(got, expected, "reply corrupted under {fault_kind:?}"),
            Err(
                WireError::Io(_)
                | WireError::Remote(_)
                | WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::Truncated
                | WireError::TrailingBytes
                | WireError::Malformed(_)
                | WireError::UnknownOpcode(_)
                | WireError::PayloadTooLarge(_)
                | WireError::Dist(_),
            ) => {}
            Err(other) => panic!("unexpected error class under {fault_kind:?}: {other:?}"),
        }
        // Bounded: the i/o timeout (two attempts' worth plus slack)
        // caps every fault, including the silent mid-frame stall.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fault {fault_kind:?} took {:?}",
            started.elapsed()
        );
        drop(proxy);
    }

    // The server survived the whole gauntlet.
    let mut direct_client =
        ServeClient::connect(server.local_addr().to_string()).expect("connect directly");
    direct_client.ping().expect("server alive after chaos");
    server.shutdown();
    let _ = server.wait();
}

/// A peer that starts a frame and stalls is reaped by the mid-frame
/// i/o timeout; the server keeps serving everyone else.
#[test]
fn slow_loris_is_reaped_not_collected() {
    let _guard = exclusive();
    let server = start(2, 64);

    // Hand-rolled partial header: magic + version and then silence.
    let mut loris = TcpStream::connect(server.local_addr()).expect("connect");
    loris.write_all(b"HAMR\x02\x00").expect("partial header");
    loris.flush().expect("flush");

    // A healthy client is unaffected while the loris dangles.
    let mut client = ServeClient::connect(server.local_addr().to_string()).expect("connect");
    let got = client
        .reconstruct(&chaos_counts(2), &HammerConfig::paper())
        .expect("healthy client computes");
    assert_eq!(got, direct(&chaos_counts(2)));

    // The loris connection is closed within the i/o timeout (plus
    // generous scheduling slack): its next read sees EOF.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut buf = [0u8; 16];
    let start_wait = Instant::now();
    let reaped = loop {
        match std::io::Read::read(&mut loris, &mut buf) {
            Ok(0) => break true, // EOF: reaped
            Ok(_) => {}          // unexpected bytes; keep draining
            Err(_) => break start_wait.elapsed() >= Duration::from_millis(350),
        }
    };
    assert!(reaped, "slow-loris connection was not reaped");

    server.shutdown();
    let _ = server.wait();
}

/// The leader-death regression: a panic mid-compute must surface as an
/// error to the panicking request, never wedge coalesced followers,
/// never be cached, and the followers must self-heal by re-leading.
#[test]
fn leader_panic_frees_followers_and_is_never_cached() {
    let _guard = exclusive();
    let server = start(4, 64);
    let addr = server.local_addr().to_string();
    let counts = chaos_counts(3);
    let expected = direct(&counts);

    fault::arm_panic_on_nth_compute(1);
    let barrier = Arc::new(Barrier::new(4));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let counts = counts.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                barrier.wait();
                client.reconstruct(&counts, &HammerConfig::paper())
            })
        })
        .collect();

    let mut errors = 0;
    for handle in clients {
        // `join` succeeding at all proves no follower was left stuck.
        match handle.join().expect("client thread finishes") {
            Ok(got) => assert_eq!(got, expected, "post-panic recompute must stay exact"),
            Err(WireError::Remote(msg)) => {
                assert!(
                    msg.contains("panic"),
                    "the one failing request reports the panic, got: {msg}"
                );
                errors += 1;
            }
            Err(other) => panic!("unexpected failure: {other:?}"),
        }
    }
    // Exactly the armed panic fails; everyone else re-led and computed.
    assert!(errors <= 1, "one armed panic cannot fail {errors} requests");

    // The panic was never cached: a fresh identical request computes
    // (or cache-hits a *successful* result) and matches exactly.
    let mut client = ServeClient::connect(&addr).expect("connect");
    let again = client
        .reconstruct(&counts, &HammerConfig::paper())
        .expect("panic must not poison the key");
    assert_eq!(again, expected);

    fault::reset();
    server.shutdown();
    let _ = server.wait();
}

/// The measured serving-tier cancellation latency: a short deadline on
/// a (artificially slowed) compute returns `DeadlineExceeded` long
/// before the uncancelled compute would have finished.
#[test]
fn short_deadlines_cut_slow_computes_short() {
    let _guard = exclusive();
    let server = start(2, 64);
    let addr = server.local_addr().to_string();

    // 1.2 s of injected latency per compute, 120 ms of budget.
    fault::set_slow_compute_ms(1200);
    let mut client = ServeClient::connect(&addr)
        .expect("connect")
        .with_deadline(Some(Duration::from_millis(120)));
    let started = Instant::now();
    let got = client.reconstruct(&chaos_counts(4), &HammerConfig::paper());
    let elapsed = started.elapsed();
    assert!(
        matches!(got, Err(WireError::DeadlineExceeded)),
        "expected DeadlineExceeded, got {got:?}"
    );
    // Measured latency: the refusal must arrive in a small multiple of
    // the budget, nowhere near the 1.2 s the compute would take.
    assert!(
        elapsed < Duration::from_millis(800),
        "cancellation took {elapsed:?}"
    );

    // An expired-on-arrival budget is refused without computing.
    let mut instant_client = ServeClient::connect(&addr)
        .expect("connect")
        .with_deadline(Some(Duration::from_millis(1)));
    let got = instant_client.reconstruct(&chaos_counts(5), &HammerConfig::paper());
    assert!(
        matches!(got, Err(WireError::DeadlineExceeded)),
        "expected DeadlineExceeded for expired budget, got {got:?}"
    );

    // Without a deadline the slowed compute still completes exactly.
    fault::set_slow_compute_ms(50);
    let mut patient = ServeClient::connect(&addr).expect("connect");
    let got = patient
        .reconstruct(&chaos_counts(6), &HammerConfig::paper())
        .expect("patient client completes");
    assert_eq!(got, direct(&chaos_counts(6)));

    fault::reset();
    server.shutdown();
    let _ = server.wait();
}

/// Degradation under pressure: with the knob on and the queue saturated,
/// a large reconstruction gets an ANN-approximate answer — flagged as
/// such — instead of a refusal; small requests stay exact.
#[test]
fn saturated_queues_degrade_large_requests_to_approx() {
    let _guard = exclusive();
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_limit: 64,
        cache_mb: 16,
        degrade: DegradeConfig {
            enabled: true,
            queue_threshold: 0, // treat every instant as saturated
            min_support: 30,
        },
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // Large support: degraded, flagged, still a valid distribution.
    let big = chaos_counts(7); // 41 distinct outcomes ≥ min_support
    let (dist, approx) = client
        .reconstruct_flagged(&big, &HammerConfig::paper())
        .expect("degraded reply");
    assert!(approx, "saturated large request must be flagged approx");
    assert!((dist.total_mass() - 1.0).abs() < 1e-9);

    // Small support: exact even under "saturation".
    let mut small = Counts::new(6).unwrap();
    small.record_n(bs("111111"), 400);
    small.record_n(bs("011111"), 60);
    small.record_n(bs("101010"), 90);
    let (dist, approx) = client
        .reconstruct_flagged(&small, &HammerConfig::paper())
        .expect("exact reply");
    assert!(!approx, "small requests stay exact");
    assert_eq!(dist, direct(&small));

    server.shutdown();
    let _ = server.wait();
}

/// Shutdown stays bounded with chaos in flight, and a request arriving
/// during the drain gets an in-band `ShuttingDown`, not a silent close.
#[test]
fn shutdown_is_bounded_and_answers_drain_arrivals_in_band() {
    let _guard = exclusive();
    let server = start(2, 64);
    let addr = server.local_addr().to_string();

    // A slow job in flight (injected latency), plus a dangling
    // slow-loris connection for the drain to ignore.
    fault::set_slow_compute_ms(300);
    let slow_counts = chaos_counts(8);
    let expected = direct(&slow_counts);
    let slow_client = {
        let addr = addr.clone();
        let slow_counts = slow_counts.clone();
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            client.reconstruct(&slow_counts, &HammerConfig::paper())
        })
    };
    let mut loris = TcpStream::connect(server.local_addr()).expect("connect");
    loris.write_all(b"HAMR").expect("partial magic");

    // A bystander connected BEFORE the drain begins…
    let mut bystander = ServeClient::connect(&addr)
        .expect("connect")
        .with_busy_retries(0, Duration::ZERO);
    bystander.ping().expect("bystander alive");

    std::thread::sleep(Duration::from_millis(60)); // let the slow job start
    server.shutdown();

    // …sends a request mid-drain: the reply is an in-band refusal.
    match bystander.reconstruct(&chaos_counts(9), &HammerConfig::paper()) {
        Err(WireError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown during drain, got {other:?}"),
    }

    // The drain itself is bounded: `wait` returns within a watchdog
    // budget despite the slow job and the dangling loris.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let stats = server.wait();
        let _ = done_tx.send(stats);
    });
    let stats = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown must complete within the watchdog budget");
    assert!(stats.requests >= 1);

    // The in-flight slow job was drained, not dropped — and stayed
    // byte-identical.
    match slow_client.join().expect("slow client thread finishes") {
        Ok(got) => assert_eq!(got, expected, "drained reply must stay exact"),
        // The job may also have been refused if shutdown won the race
        // to the queue; both are sound, a hang or a wrong answer is not.
        Err(WireError::ShuttingDown | WireError::Busy | WireError::Io(_)) => {}
        Err(other) => panic!("unexpected drain outcome: {other:?}"),
    }
    fault::reset();
}

/// Deterministic replies through an honest-but-slow network: a delayed
/// proxy changes latency only, and coalesced concurrent requests
/// through chaos still produce one computation's worth of identical
/// bytes.
#[test]
fn delayed_networks_change_latency_never_bytes() {
    let _guard = exclusive();
    let server = start(4, 64);
    let proxy = ChaosProxy::spawn(server.local_addr(), vec![Fault::DelayMs(5)]).expect("proxy");
    let addr = proxy.local_addr().to_string();
    let counts = chaos_counts(10);
    let expected = direct(&counts);

    let barrier = Arc::new(Barrier::new(3));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let counts = counts.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect via proxy");
                barrier.wait();
                client
                    .reconstruct(&counts, &HammerConfig::paper())
                    .expect("delayed but sound")
            })
        })
        .collect();
    for handle in clients {
        assert_eq!(handle.join().expect("finishes"), expected);
    }
    let stats = server.stats();
    assert_eq!(
        stats.cache_misses, 1,
        "identical concurrent requests coalesce to one computation"
    );

    drop(proxy);
    server.shutdown();
    let _ = server.wait();
}

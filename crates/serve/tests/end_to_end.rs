//! End-to-end serving tests: a real TCP server in-process, concurrent
//! clients, byte-identical replies versus direct library calls, cache
//! and coalescing behavior, backpressure, and graceful shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use hammer_core::{Hammer, HammerConfig};
use hammer_dist::{BitString, Counts, Distribution};
use hammer_serve::{
    serve, DeviceSpec, Reply, SampleJob, ServeClient, ServeConfig, ServeStats, WireError,
};
use hammer_sim::{AutoEngine, Circuit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bs(s: &str) -> BitString {
    BitString::parse(s).unwrap()
}

/// A server on an ephemeral port with the given cache budget.
fn start(cache_mb: usize, workers: usize, queue_limit: usize) -> hammer_serve::ServerHandle {
    serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_limit,
        cache_mb,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// The §4.5 halo histogram: correct answer out-gunned by an isolated
/// dominant error, revealed by reconstruction. `salt` perturbs one
/// count so distinct salts produce distinct cache keys.
fn halo_counts(salt: u64) -> Counts {
    let mut counts = Counts::new(5).unwrap();
    counts.record_n(bs("11111"), 150);
    counts.record_n(bs("00100"), 250 + salt);
    for s in ["11110", "11101", "11011", "10111", "01111"] {
        counts.record_n(bs(s), 80);
    }
    for s in ["11100", "11010", "00111", "01011"] {
        counts.record_n(bs(s), 50);
    }
    counts
}

/// The reply bytes a distribution travels as — the byte-identical
/// comparison the acceptance criteria ask for.
fn wire_bytes(d: &Distribution) -> Vec<u8> {
    Reply::Distribution(d.clone()).encode()
}

fn ghz_job(n: usize, trials: u64, seed: u64) -> SampleJob {
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    SampleJob {
        circuit,
        device: DeviceSpec::IbmParis(n),
        trials,
        seed,
        config: HammerConfig::paper(),
    }
}

/// What the server is expected to compute for a job, via direct library
/// calls (same engine dispatch, same seed discipline, same Hammer).
fn direct_sample_and_reconstruct(job: &SampleJob) -> Distribution {
    let device = job.device.to_device().expect("valid preset");
    let mut rng = StdRng::seed_from_u64(job.seed);
    let counts = AutoEngine::new(&device)
        .sample(&job.circuit, job.trials, &mut rng)
        .expect("valid job");
    Hammer::with_config(job.config).reconstruct_counts(&counts)
}

#[test]
fn concurrent_clients_get_byte_identical_replies_and_cache_hits() {
    let server = start(64, 4, 256);
    let addr = server.local_addr().to_string();

    // Direct library results to compare against.
    let expected_reconstruct =
        Hammer::with_config(HammerConfig::paper()).reconstruct_counts(&halo_counts(0));
    let job = ghz_job(6, 2000, 0xAB);
    let expected_job = direct_sample_and_reconstruct(&job);
    let noisy = halo_counts(0).to_distribution();

    // ≥ 2 concurrent clients, each driving all three compute opcodes
    // twice (the second pass hits the cache).
    let barrier = Arc::new(Barrier::new(3));
    let workers: Vec<_> = (0..3u64)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let expected_reconstruct = expected_reconstruct.clone();
            let expected_job = expected_job.clone();
            let job = job.clone();
            let noisy = noisy.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                client.ping().expect("ping");
                barrier.wait();
                for _ in 0..2 {
                    let got = client
                        .reconstruct(&halo_counts(0), &HammerConfig::paper())
                        .expect("reconstruct");
                    assert_eq!(wire_bytes(&got), wire_bytes(&expected_reconstruct));
                    assert_eq!(got.most_probable().unwrap().0, bs("11111"));

                    let got = client.sample_and_reconstruct(&job).expect("sample job");
                    assert_eq!(wire_bytes(&got), wire_bytes(&expected_job));

                    let m = client.metrics(&noisy, &[bs("11111")]).expect("metrics");
                    let pst = hammer_dist::metrics::pst(&noisy, &[bs("11111")]);
                    assert!((m.pst - pst).abs() < 1e-15);
                    assert!((m.uniform_ehd - hammer_dist::metrics::uniform_ehd(5)).abs() < 1e-15);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    let stats = server.stats();
    // 3 clients × 2 rounds × 3 compute opcodes.
    assert_eq!(stats.requests, 18);
    // Two distinct cacheable keys; every later identical request hit
    // the cache or coalesced onto the in-flight leader.
    assert_eq!(stats.cache_misses, 2, "{stats:?}");
    assert!(stats.cache_hits > 0, "{stats:?}");
    assert_eq!(stats.cache_hits + stats.coalesced, 10, "{stats:?}");
    assert_eq!(stats.busy_rejections, 0);

    // Graceful shutdown: acknowledged, then the port actually closes.
    let mut client = ServeClient::connect(&addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown ack");
    let final_stats = server.wait();
    assert_eq!(final_stats.requests, 18);
    assert!(
        std::net::TcpStream::connect(&addr).is_err(),
        "listener must be closed after graceful shutdown"
    );
}

#[test]
fn k_concurrent_identical_requests_compute_once() {
    let server = start(64, 8, 256);
    let addr = server.local_addr().to_string();
    const K: usize = 8;

    // A job heavy enough that the followers arrive while the leader is
    // still computing (coalescing), but the assertion only relies on
    // the miss counter: K identical requests, ONE underlying
    // computation, regardless of timing.
    let job = ghz_job(10, 60_000, 0x5EED);
    let barrier = Arc::new(Barrier::new(K));
    let reply_fingerprints: Vec<_> = (0..K)
        .map(|_| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let job = job.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                barrier.wait();
                let d = client.sample_and_reconstruct(&job).expect("job");
                wire_bytes(&d)
            })
        })
        .collect();
    let replies: Vec<Vec<u8>> = reply_fingerprints
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // Byte-identical replies across every client.
    for r in &replies[1..] {
        assert_eq!(r, &replies[0]);
    }
    let stats = server.stats();
    assert_eq!(stats.requests, K as u64);
    assert_eq!(
        stats.cache_misses, 1,
        "K identical requests must compute once: {stats:?}"
    );
    assert_eq!(stats.cache_hits + stats.coalesced, (K - 1) as u64);

    server.shutdown();
    let _ = server.wait();
}

#[test]
fn tiny_cache_evicts_but_stays_correct() {
    // cache_mb = 0 → per-shard budget 0: each shard keeps at most the
    // entry just inserted, so distinct requests force evictions.
    let server = start(0, 2, 64);
    let addr = server.local_addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    let mut expected = Vec::new();
    for salt in 0..12u64 {
        let counts = halo_counts(salt);
        let direct = Hammer::with_config(HammerConfig::paper()).reconstruct_counts(&counts);
        let got = client
            .reconstruct(&counts, &HammerConfig::paper())
            .expect("reconstruct");
        assert_eq!(wire_bytes(&got), wire_bytes(&direct));
        expected.push((counts, direct));
    }
    // Re-request everything: evicted entries recompute, and recompute
    // to the same bytes.
    for (counts, direct) in &expected {
        let got = client
            .reconstruct(counts, &HammerConfig::paper())
            .expect("reconstruct again");
        assert_eq!(wire_bytes(&got), wire_bytes(direct));
    }
    let stats = server.stats();
    assert!(stats.evictions > 0, "tiny cache must evict: {stats:?}");
    assert!(stats.cache_bytes <= 16 * 1024, "budget enforced: {stats:?}");

    server.shutdown();
    let _ = server.wait();
}

#[test]
fn wide_registers_round_trip_through_the_service() {
    let server = start(16, 2, 64);
    let mut client = ServeClient::connect(server.local_addr().to_string()).expect("connect");

    // A 100-bit histogram: halo around the all-ones answer straddling
    // the limb boundary.
    let n = 100;
    let correct = BitString::ones(n);
    let mut counts = Counts::new(n).unwrap();
    counts.record_n(correct, 150);
    counts.record_n(BitString::zeros(n).flip_bit(70).flip_bit(3), 250);
    for q in [0usize, 31, 63, 64, 90, 99] {
        counts.record_n(correct.flip_bit(q), 80);
    }
    let direct = Hammer::with_config(HammerConfig::paper()).reconstruct_counts(&counts);
    let got = client
        .reconstruct(&counts, &HammerConfig::paper())
        .expect("wide reconstruct");
    assert_eq!(wire_bytes(&got), wire_bytes(&direct));
    assert_eq!(got.most_probable().unwrap().0, correct);

    let m = client
        .metrics(&counts.to_distribution(), &[correct])
        .expect("wide metrics");
    assert!(m.pst > 0.0 && m.ehd > 0.0);

    server.shutdown();
    let _ = server.wait();
}

#[test]
fn zero_queue_limit_replies_busy() {
    let server = start(16, 1, 0);
    // Retries disabled: the first refusal must surface immediately.
    let mut client = ServeClient::connect(server.local_addr().to_string())
        .expect("connect")
        .with_busy_retries(0, Duration::ZERO);
    // Cheap opcodes bypass the queue and still work…
    client.ping().expect("ping bypasses the queue");
    // …but every compute submission is refused up front.
    match client.reconstruct(&halo_counts(0), &HammerConfig::paper()) {
        Err(WireError::Busy) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(stats.busy_rejections, 1);
    assert_eq!(stats.requests, 0);
    server.shutdown();
    let _ = server.wait();
}

/// The bounded `Busy` retry: against a server that refuses every
/// compute submission (queue limit 0), a client configured for `r`
/// retries must be seen asking exactly `1 + r` times before it finally
/// surfaces [`WireError::Busy`].
#[test]
fn busy_replies_are_retried_a_bounded_number_of_times() {
    let server = start(16, 1, 0);
    let mut client = ServeClient::connect(server.local_addr().to_string())
        .expect("connect")
        .with_busy_retries(2, Duration::from_millis(1));
    match client.reconstruct(&halo_counts(0), &HammerConfig::paper()) {
        Err(WireError::Busy) => {}
        other => panic!("expected Busy after exhausted retries, got {other:?}"),
    }
    let stats = server.stats();
    assert_eq!(
        stats.busy_rejections, 3,
        "1 initial attempt + 2 retries must reach the server"
    );
    assert_eq!(stats.requests, 0);
    // The connection survives the refusals.
    client.ping().expect("still alive");
    server.shutdown();
    let _ = server.wait();
}

#[test]
fn server_side_failures_are_error_replies_not_panics() {
    let server = start(16, 2, 64);
    let mut client = ServeClient::connect(server.local_addr().to_string()).expect("connect");

    // Width-bound violation in a device spec.
    let job = SampleJob {
        device: DeviceSpec::IbmParis(40),
        ..ghz_job(6, 100, 1)
    };
    match client.sample_and_reconstruct(&job) {
        Err(WireError::Remote(msg)) => assert!(msg.contains("27"), "{msg}"),
        other => panic!("expected a remote error, got {other:?}"),
    }
    // Zero trials.
    let job = ghz_job(6, 0, 1);
    assert!(matches!(
        client.sample_and_reconstruct(&job),
        Err(WireError::Remote(_))
    ));
    // Metrics width mismatch is caught client-side (widths are
    // implicit in the wire layout; sending would reinterpret bits).
    let noisy = halo_counts(0).to_distribution();
    assert!(matches!(
        client.metrics(&noisy, &[bs("111")]),
        Err(WireError::Malformed(_))
    ));
    // The connection (and server) survive all of it.
    client.ping().expect("still alive");

    // A failed job must not be cached: the counters show no hit when
    // the same bad job is retried.
    let before = server.stats();
    let job = SampleJob {
        device: DeviceSpec::IbmParis(40),
        ..ghz_job(6, 100, 1)
    };
    let _ = client.sample_and_reconstruct(&job);
    let after: ServeStats = server.stats();
    assert_eq!(
        after.cache_hits, before.cache_hits,
        "failures are not cached"
    );

    server.shutdown();
    let _ = server.wait();
}

/// The reconnect story: a client built before a server restart keeps
/// working against the new instance (same address).
#[test]
fn client_reconnects_after_server_restart() {
    let first = start(16, 2, 64);
    let addr = first.local_addr();
    let mut client = ServeClient::connect(addr.to_string()).expect("connect");
    client.ping().expect("first server alive");

    first.shutdown();
    let _ = first.wait();

    // Rebind on the SAME port (released by the graceful shutdown).
    let second = serve(&ServeConfig {
        addr: addr.to_string(),
        workers: 2,
        queue_limit: 64,
        cache_mb: 16,
        ..ServeConfig::default()
    })
    .expect("rebind the released port");
    // The old connection is dead; the client reconnects and retries.
    client.ping().expect("reconnected to the second server");
    let d = client
        .reconstruct(&halo_counts(3), &HammerConfig::paper())
        .expect("compute on the second server");
    assert!((d.total_mass() - 1.0).abs() < 1e-9);

    second.shutdown();
    let _ = second.wait();
}

/// Requests queued at shutdown time are drained, not dropped: their
/// replies arrive before `wait` returns.
#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let server = start(16, 1, 64);
    let addr = server.local_addr().to_string();

    // One slow job in flight from a background client…
    let job = ghz_job(10, 60_000, 7);
    let expected = direct_sample_and_reconstruct(&job);
    let done = Arc::new(AtomicU64::new(0));
    let worker = {
        let addr = addr.clone();
        let job = job.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client = ServeClient::connect(addr).expect("connect");
            let d = client.sample_and_reconstruct(&job).expect("drained reply");
            done.store(1, Ordering::SeqCst);
            d
        })
    };
    // …while the main thread requests shutdown "concurrently".
    std::thread::sleep(std::time::Duration::from_millis(30));
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.shutdown().expect("ack");
    let _ = server.wait();
    let got = worker.join().expect("worker");
    assert_eq!(done.load(Ordering::SeqCst), 1, "reply arrived");
    assert_eq!(wire_bytes(&got), wire_bytes(&expected));
}

//! Property-based and corpus tests for the persistent distribution
//! store: record encode/decode round-trips across the full 1–128-bit
//! outcome range, plus damage corpora (single-bit flips, truncation at
//! arbitrary byte boundaries) that the store must survive by dropping
//! records — never by panicking, refusing to start, or serving a wrong
//! distribution.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use hammer_dist::{BitString, Distribution};
use hammer_serve::store::{self, DistStore, FLAG_APPROX};
use proptest::prelude::*;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per case — proptest cases reuse the
/// process, so a counter disambiguates alongside the pid.
fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hammer-store-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Strategy: a sparse distribution over `1..=128`-bit outcomes. Keys
/// are spread into the high limb (for widths past 64) so both limbs of
/// the SoA payload carry real data.
fn any_width_distribution() -> impl Strategy<Value = Distribution> {
    (1usize..=128)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::btree_map(0u64..=u64::MAX, 1u64..1000, 1..24),
            )
        })
        .prop_map(|(n, map)| {
            let mask = if n == 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            };
            let mut dedup = std::collections::BTreeMap::new();
            for (k, w) in map {
                let spread = (u128::from(k)
                    | (u128::from(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)) << 64))
                    & mask;
                *dedup.entry(spread).or_insert(0u64) += w;
            }
            let pairs = dedup
                .into_iter()
                .map(|(k, w)| (BitString::from_u128(k, n), w as f64));
            Distribution::from_probs(n, pairs).expect("positive weights")
        })
}

/// Spills three small deterministic distributions (one in the
/// approximate namespace) into a fresh store and closes it, returning
/// the directory and the expected contents.
fn populated_store() -> (PathBuf, Vec<(u64, u8, Distribution)>) {
    let dir = scratch_dir();
    let entries: Vec<(u64, u8, Distribution)> = (0..3u64)
        .map(|i| {
            let pairs = (0..8u64).map(|k| (BitString::new(k, 4), (1 + i + k) as f64));
            let flags = if i == 2 { FLAG_APPROX } else { 0 };
            (
                0x1000 + i,
                flags,
                Distribution::from_probs(4, pairs).expect("positive weights"),
            )
        })
        .collect();
    let store = DistStore::open(&dir, 1 << 30).expect("open fresh store");
    for (key, flags, d) in &entries {
        store.spill(*key, *flags, d).expect("spill");
    }
    drop(store);
    (dir, entries)
}

/// The single segment file a freshly populated store writes.
fn segment_file(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "populated store has one segment");
    segments.remove(0)
}

/// Reopens a (possibly damaged) store and checks the safety invariants
/// every corpus test shares: the open never fails, every served load
/// is byte-for-byte the original distribution, and the counters agree
/// with what was served.
fn assert_never_wrong(dir: &Path, entries: &[(u64, u8, Distribution)]) -> Result<(), String> {
    let store = DistStore::open(dir, 1 << 30).expect("damaged store must still open");
    let recovered = store.stats().recovered;
    prop_assert!(
        recovered <= entries.len() as u64,
        "recovered {recovered} records from {} spills",
        entries.len()
    );
    let mut served = 0u64;
    for (key, flags, d) in entries {
        if let Some(got) = store.load(*key, *flags) {
            prop_assert_eq!(&got, d, "a served distribution must be the original");
            served += 1;
        }
    }
    // Loads may demote directory entries (read-time verification), but
    // never invent them.
    prop_assert!(served <= recovered);
    prop_assert_eq!(store.stats().loads, served);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip_at_any_width(d in any_width_distribution(), key in 0u64..=u64::MAX, approx in 0u8..2) {
        let flags = if approx == 1 { FLAG_APPROX } else { 0 };
        let record = store::encode_record(key, flags, &d);
        let (got_key, got_flags, got) = store::decode_record(&record).expect("freshly encoded record decodes");
        prop_assert_eq!(got_key, key);
        prop_assert_eq!(got_flags, flags);
        prop_assert_eq!(got, d);
    }

    #[test]
    fn any_single_byte_corruption_is_skipped_never_served(byte_sel in 0u32..=u32::MAX, bit in 0u8..8) {
        let (dir, entries) = populated_store();
        let seg = segment_file(&dir);
        let mut bytes = std::fs::read(&seg).expect("read segment");
        let idx = byte_sel as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&seg, &bytes).expect("rewrite segment");

        assert_never_wrong(&dir, &entries)?;
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_any_boundary_recovers_the_committed_prefix(cut_sel in 0u32..=u32::MAX) {
        let (dir, entries) = populated_store();
        let seg = segment_file(&dir);
        let bytes = std::fs::read(&seg).expect("read segment");
        let cut = cut_sel as usize % bytes.len();
        std::fs::write(&seg, &bytes[..cut]).expect("truncate segment");

        assert_never_wrong(&dir, &entries)?;

        // Recovery is idempotent: the first open truncated the torn
        // tail, so a second open over the same directory sees a clean
        // log — nothing further to drop, same directory size.
        let reopened = DistStore::open(&dir, 1 << 30).expect("reopen after recovery");
        let record_bytes = store::encode_record(
            entries[0].0,
            entries[0].1,
            &entries[0].2,
        ).len();
        let whole_records = cut / record_bytes; // identical record sizes
        prop_assert_eq!(reopened.stats().recovered, whole_records as u64);
        prop_assert_eq!(reopened.stats().corrupt_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_missing_segment_degrades_to_cold_not_refused() {
    let (dir, entries) = populated_store();
    std::fs::remove_file(segment_file(&dir)).expect("delete segment");
    let store = DistStore::open(&dir, 1 << 30).expect("empty store opens");
    assert_eq!(store.stats().recovered, 0);
    for (key, flags, _) in &entries {
        assert_eq!(store.load(*key, *flags), None);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_store_directory_can_be_a_plain_garbage_file_graveyard() {
    // Foreign files in the directory are ignored, not scanned.
    let dir = scratch_dir();
    std::fs::create_dir_all(&dir).expect("create dir");
    std::fs::write(dir.join("notes.txt"), b"not a segment").expect("write stray file");
    let store = DistStore::open(&dir, 1 << 30).expect("open alongside stray files");
    assert!(store.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

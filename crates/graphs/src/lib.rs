//! MaxCut problem instances for the QAOA benchmarks of the HAMMER
//! reproduction: graph types, the generator families of Tables 1–2
//! (Erdős–Rényi, random d-regular, grid, ring, Sherrington–Kirkpatrick)
//! and exact brute-force optima.
//!
//! # Example
//!
//! ```
//! use hammer_graphs::{generators, MaxCut};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let graph = generators::random_regular(10, 3, &mut rng);
//! let problem = MaxCut::new(graph);
//! let optimum = problem.brute_force();
//! assert!(optimum.c_min < 0.0); // the desired cut has negative cost
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
mod maxcut;

pub use graph::Graph;
pub use maxcut::{MaxCut, MaxCutOptimum};

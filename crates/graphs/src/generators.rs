//! Random and structured graph generators matching the paper's workload
//! families (Tables 1–2): Erdős–Rényi, random d-regular, 2-D grid, ring
//! (2-regular) and Sherrington–Kirkpatrick instances.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Graph;

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`, unit weights. The paper varies `p` between 0.2
/// (sparse) and 0.8 (highly connected) for its random-graph QAOA suite.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "edge probability out of [0,1]");
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen::<f64>() < p {
                g.add_edge(a, b, 1.0);
            }
        }
    }
    g
}

/// A uniformly random simple `d`-regular graph via the configuration
/// (pairing) model with rejection, unit weights. The 3-regular family is
/// the core of both the Google and IBM QAOA suites.
///
/// # Panics
///
/// Panics if `n·d` is odd, `d ≥ n`, or a simple pairing cannot be found
/// in 10 000 attempts (not observed for the paper's sizes).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d < n, "degree {d} must be below node count {n}");
    assert!(
        (n * d).is_multiple_of(2),
        "n·d must be even for a {d}-regular graph"
    );
    'attempt: for _ in 0..10_000 {
        // Stubs: d copies of each node, shuffled and paired.
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut g = Graph::new(n);
        let mut seen = std::collections::HashSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b {
                continue 'attempt;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue 'attempt;
            }
            g.add_edge(a, b, 1.0);
        }
        return g;
    }
    panic!("failed to sample a simple {d}-regular graph on {n} nodes");
}

/// The `rows × cols` grid graph with unit weights (node `r·cols + c` at
/// row `r`, column `c`) — the Google "Grid" QAOA family, which maps onto
/// Sycamore's lattice without SWAPs.
///
/// # Panics
///
/// Panics if either dimension is zero or the graph exceeds 64 nodes.
#[must_use]
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1, 1.0);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols, 1.0);
            }
        }
    }
    g
}

/// A near-square grid covering exactly `n` nodes: the widest grid
/// `rows × cols` with `rows·cols ≥ n`, truncated to the first `n` nodes
/// (row-major). Used to build Google-style grid instances at arbitrary
/// sizes.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds 64.
#[must_use]
pub fn near_square_grid(n: usize) -> Graph {
    assert!((1..=64).contains(&n), "size {n} outside 1..=64");
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let mut g = Graph::new(n);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if v >= n {
                continue;
            }
            if c + 1 < cols && v + 1 < n {
                g.add_edge(v, v + 1, 1.0);
            }
            if r + 1 < rows && v + cols < n {
                g.add_edge(v, v + cols, 1.0);
            }
        }
    }
    g
}

/// The ring (cycle) graph — the 2-regular family of Fig. 12's sweep.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, 1.0);
    }
    g.add_edge(n - 1, 0, 1.0);
    g
}

/// A Sherrington–Kirkpatrick instance: the complete graph with uniform
/// ±1 weights — the third Google QAOA family.
pub fn sherrington_kirkpatrick<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for a in 0..n {
        for b in a + 1..n {
            let w = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            g.add_edge(a, b, w);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = erdos_renyi(8, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(8, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 28);
    }

    #[test]
    fn erdos_renyi_density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20;
        let pairs = n * (n - 1) / 2;
        let g = erdos_renyi(n, 0.4, &mut rng);
        let density = g.num_edges() as f64 / pairs as f64;
        assert!((density - 0.4).abs() < 0.15, "density {density}");
    }

    #[test]
    fn random_regular_has_exact_degrees() {
        let mut rng = StdRng::seed_from_u64(3);
        for (n, d) in [(8, 3), (10, 3), (12, 4), (6, 2), (16, 3)] {
            let g = random_regular(n, d, &mut rng);
            for v in 0..n {
                assert_eq!(g.degree(v), d, "node {v} of {d}-regular on {n}");
            }
            assert_eq!(g.num_edges(), n * d / 2);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = random_regular(5, 3, &mut rng);
    }

    #[test]
    fn grid_edge_count() {
        // rows·(cols−1) + cols·(rows−1).
        let g = grid_graph(3, 4);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
        assert!(g.is_connected());
    }

    #[test]
    fn near_square_grid_connected_for_all_sizes() {
        for n in 2..=36 {
            let g = near_square_grid(n);
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_connected(), "size {n} disconnected");
            // Grid degree never exceeds 4.
            for v in 0..n {
                assert!(g.degree(v) <= 4);
            }
        }
    }

    #[test]
    fn ring_is_two_regular() {
        let g = ring(7);
        for v in 0..7 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn sk_is_complete_with_unit_magnitude_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = sherrington_kirkpatrick(7, &mut rng);
        assert_eq!(g.num_edges(), 21);
        assert!(g.edges().iter().all(|&(_, _, w)| w.abs() == 1.0));
        // Both signs should appear with overwhelming probability.
        assert!(g.edges().iter().any(|&(_, _, w)| w > 0.0));
        assert!(g.edges().iter().any(|&(_, _, w)| w < 0.0));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = random_regular(10, 3, &mut StdRng::seed_from_u64(9));
        let b = random_regular(10, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(9));
        let d = erdos_renyi(10, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(c, d);
    }
}

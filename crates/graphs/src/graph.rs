//! Undirected weighted graphs — the MaxCut problem instances QAOA
//! optimizes.

use std::collections::VecDeque;

/// An undirected weighted graph on nodes `0..n`.
///
/// Parallel edges are rejected; weights are arbitrary finite reals
/// (the Sherrington–Kirkpatrick instances use ±1).
///
/// # Example
///
/// ```
/// use hammer_graphs::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1, 1.0);
/// g.add_edge(1, 2, 1.0);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 64 (the bitstring width limit).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "graph size {n} outside 1..=64");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Builds a graph from an edge list with unit weights.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops or duplicates.
    #[must_use]
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b, 1.0);
        }
        g
    }

    /// Adds an undirected edge of the given weight.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, duplicate edges or
    /// non-finite weights.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) -> &mut Self {
        assert!(a < self.n && b < self.n, "edge ({a},{b}) out of range");
        assert!(a != b, "self-loop on node {a}");
        assert!(weight.is_finite(), "non-finite edge weight");
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(
            !self.edges.iter().any(|&(x, y, _)| (x, y) == (lo, hi)),
            "duplicate edge ({a},{b})"
        );
        self.edges.push((lo, hi, weight));
        self
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge list as `(a, b, weight)` with `a < b`.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        assert!(v < self.n, "node {v} out of range");
        self.edges
            .iter()
            .filter(|&&(a, b, _)| a == v || b == v)
            .count()
    }

    /// Sum of all edge weights.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// True if every node is reachable from node 0.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n == 1 {
            return true;
        }
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b, _) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; self.n];
        seen[0] = true;
        let mut queue = VecDeque::from([0usize]);
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        visited == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0)
            .add_edge(1, 2, -2.0)
            .add_edge(2, 3, 0.5);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert!((g.total_weight() + 0.5).abs() < 1e-12);
        assert!(g.is_connected());
    }

    #[test]
    fn from_edges_unit_weights() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.edges().iter().all(|&(_, _, w)| w == 1.0));
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn singleton_is_connected() {
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0).add_edge(1, 0, 2.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::new(3);
        g.add_edge(2, 2, 1.0);
    }
}

//! The MaxCut cost function in the paper's Ising convention and
//! brute-force optimal solutions for instances up to 30 nodes.

use hammer_dist::BitString;

use crate::graph::Graph;

/// A MaxCut problem over a weighted graph, in the Ising convention the
/// paper (following Harrigan et al.) uses: the cost of an assignment
/// `x ∈ {0,1}ⁿ` is
///
/// `C(x) = Σ_{(i,j,w)} w · z_i · z_j`, with `z_i = +1` for bit 0 and
/// `−1` for bit 1.
///
/// Cut edges contribute `−w`, so for positive weights **the desired cut
/// has negative cost** and minimizing `C` maximizes the cut — exactly
/// the formulation behind the paper's `C_exp/C_min` cost ratio (Eq. 5).
///
/// # Example
///
/// ```
/// use hammer_graphs::{Graph, MaxCut};
/// use hammer_dist::BitString;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A triangle: best cut severs 2 of 3 edges → cost −2 + 1 = −1.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
/// let problem = MaxCut::new(g);
/// let optimum = problem.brute_force();
/// assert_eq!(optimum.c_min, -1.0);
/// assert_eq!(problem.cost(BitString::parse("001")?), -1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaxCut {
    graph: Graph,
}

/// The exact optimum of a MaxCut instance.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxCutOptimum {
    /// The minimum (most negative) Ising cost.
    pub c_min: f64,
    /// Every assignment achieving `c_min`. Complementary pairs are both
    /// included (flipping all bits preserves the cost).
    pub optimal: Vec<BitString>,
}

impl MaxCut {
    /// Wraps a graph as a MaxCut instance.
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        Self { graph }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of binary variables (graph nodes).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Ising cost `C(x) = Σ w_ij z_i z_j` of an assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment width differs from the node count.
    #[must_use]
    pub fn cost(&self, x: BitString) -> f64 {
        assert_eq!(
            x.len(),
            self.graph.num_nodes(),
            "assignment width does not match graph size"
        );
        let bits = x.as_u64();
        let mut acc = 0.0;
        for &(a, b, w) in self.graph.edges() {
            let cut = ((bits >> a) ^ (bits >> b)) & 1 == 1;
            acc += if cut { -w } else { w };
        }
        acc
    }

    /// Total weight of the edges cut by `x` (the "cut value" in MaxCut
    /// terms): `(W_total − C(x)) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment width differs from the node count.
    #[must_use]
    pub fn cut_weight(&self, x: BitString) -> f64 {
        (self.graph.total_weight() - self.cost(x)) / 2.0
    }

    /// Exhaustive search over all `2^n` assignments, exploiting the
    /// global spin-flip symmetry (only half the space is evaluated; each
    /// optimum and its complement are both reported).
    ///
    /// # Panics
    ///
    /// Panics if the instance exceeds 30 nodes.
    #[must_use]
    pub fn brute_force(&self) -> MaxCutOptimum {
        let n = self.graph.num_nodes();
        assert!(n <= 30, "brute force limited to 30 nodes, got {n}");
        if n == 1 {
            return MaxCutOptimum {
                c_min: 0.0,
                optimal: vec![BitString::zeros(1), BitString::ones(1)],
            };
        }
        let mut c_min = f64::INFINITY;
        let mut optimal: Vec<u64> = Vec::new();
        let full = (1u64 << n) - 1;
        // Fix the top bit to 0: complements are added afterwards.
        for bits in 0..(1u64 << (n - 1)) {
            let c = self.cost(BitString::new(bits, n));
            if c < c_min - 1e-12 {
                c_min = c;
                optimal.clear();
                optimal.push(bits);
            } else if (c - c_min).abs() <= 1e-12 {
                optimal.push(bits);
            }
        }
        let mut all: Vec<BitString> = Vec::with_capacity(optimal.len() * 2);
        for bits in optimal {
            all.push(BitString::new(bits, n));
            all.push(BitString::new(bits ^ full, n));
        }
        all.sort();
        all.dedup();
        MaxCutOptimum {
            c_min,
            optimal: all,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(s: &str) -> BitString {
        BitString::parse(s).unwrap()
    }

    #[test]
    fn single_edge_costs() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let m = MaxCut::new(g);
        assert_eq!(m.cost(bs("00")), 1.0); // uncut
        assert_eq!(m.cost(bs("11")), 1.0); // uncut
        assert_eq!(m.cost(bs("01")), -1.0); // cut
        assert_eq!(m.cost(bs("10")), -1.0); // cut
        assert_eq!(m.cut_weight(bs("01")), 1.0);
        assert_eq!(m.cut_weight(bs("00")), 0.0);
    }

    #[test]
    fn triangle_is_frustrated() {
        // Odd cycles cannot cut every edge: best is 2 of 3.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let m = MaxCut::new(g);
        let opt = m.brute_force();
        assert_eq!(opt.c_min, -1.0);
        // 6 optimal assignments (all except 000 and 111).
        assert_eq!(opt.optimal.len(), 6);
    }

    #[test]
    fn even_ring_is_bipartite() {
        let g = crate::generators::ring(6);
        let m = MaxCut::new(g);
        let opt = m.brute_force();
        // Perfect cut severs all 6 edges → C = −6.
        assert_eq!(opt.c_min, -6.0);
        assert!(opt.optimal.contains(&bs("101010")));
        assert!(opt.optimal.contains(&bs("010101")));
        assert_eq!(opt.optimal.len(), 2);
    }

    #[test]
    fn complement_symmetry() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(8);
        let g = crate::generators::erdos_renyi(8, 0.5, &mut rng);
        let m = MaxCut::new(g);
        for bits in [0u64, 37, 129, 255] {
            let x = BitString::new(bits, 8);
            let xc = BitString::new(bits ^ 0xFF, 8);
            assert!((m.cost(x) - m.cost(xc)).abs() < 1e-12);
        }
    }

    #[test]
    fn brute_force_optimal_are_complement_closed() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let g = crate::generators::random_regular(10, 3, &mut rng);
        let m = MaxCut::new(g);
        let opt = m.brute_force();
        let full = (1u64 << 10) - 1;
        for x in &opt.optimal {
            let comp = BitString::new(x.as_u64() ^ full, 10);
            assert!(opt.optimal.contains(&comp), "complement of {x} missing");
            assert!((m.cost(*x) - opt.c_min).abs() < 1e-12);
        }
    }

    #[test]
    fn brute_force_really_is_minimum() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(10);
        let g = crate::generators::sherrington_kirkpatrick(8, &mut rng);
        let m = MaxCut::new(g);
        let opt = m.brute_force();
        for bits in 0..(1u64 << 8) {
            assert!(m.cost(BitString::new(bits, 8)) >= opt.c_min - 1e-12);
        }
    }

    #[test]
    fn negative_weights_flip_preference() {
        // A single negative edge is best left uncut.
        let mut g = Graph::new(2);
        g.add_edge(0, 1, -2.0);
        let m = MaxCut::new(g);
        let opt = m.brute_force();
        assert_eq!(opt.c_min, -2.0);
        assert!(opt.optimal.contains(&bs("00")));
        assert!(opt.optimal.contains(&bs("11")));
    }
}

//! The `repro bench-ann` measurement harness: recall-vs-speed of the
//! LSH-forest scoring path against the exact blocked kernel, emitted as
//! the `BENCH_ann.json` artifact.
//!
//! The workload is the regime the ANN path exists for: a clustered
//! error-halo support (random cluster centers, each with a halo of
//! 1–3-flip members) at 64 bits under a *local* `Fixed(16)`
//! neighborhood. The paper's half-width default has no locality for LSH
//! to exploit — `Hammer`'s dispatch gate never engages the forest there
//! — so benchmarking it would measure nothing; this harness measures
//! the configuration the gate actually opens for.
//!
//! Rows with an affordable exact pass (`N ≤ 64K` here: the blocked
//! kernel sweeps `2·N²` pairs) record wall-clock speedup, total
//! variation distance, and whether the reconstructed top outcome
//! agrees. Larger rows — up to the `N = 1M` reconstruct no exact sweep
//! can reach on this hardware — record ANN-only timings with recall
//! measured against a deterministic sample of query outcomes (the truth
//! scan per query is `O(N)`, so sampling keeps it affordable while
//! staying an exact computation for the sampled queries).

use std::collections::HashSet;
use std::time::Instant;

use hammer_core::{
    AnnIndex, AnnParams, AnnTuning, Hammer, HammerConfig, KernelTuning, NeighborhoodLimit,
};
use hammer_dist::{BitString, Distribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Width of the synthetic outcomes.
const N_BITS: usize = 64;

/// The local neighborhood cutoff: `4 · MAX_D ≤ N_BITS` opens the
/// dispatch gate.
const MAX_D: usize = 16;

/// Distinct outcomes per error cluster (one center + its halo).
const CLUSTER: usize = 16;

/// Largest support whose recall is measured over *every* outcome; above
/// it a deterministic sample of this many queries is used.
const FULL_RECALL_CAP: usize = 16_384;
const SAMPLED_QUERIES: usize = 512;

/// One measured `(support size, tuning)` cell.
#[derive(Debug, Clone)]
pub struct AnnBenchRow {
    /// Distinct outcomes in the support.
    pub n: usize,
    /// Forest shape (resolved: `bits_per_hash` is never 0).
    pub trees: usize,
    /// Bits sampled per hash after auto-sizing.
    pub bits_per_hash: usize,
    /// Multi-probe radius.
    pub probe_radius: usize,
    /// Wall-clock seconds to build the forest alone.
    pub secs_build: f64,
    /// Wall-clock seconds of the full ANN reconstruction (forest build
    /// included — it is part of the path's cost).
    pub secs_ann: f64,
    /// Wall-clock seconds of the exact reconstruction at the same
    /// thread count; `None` when the exact sweep is unaffordable.
    pub secs_exact: Option<f64>,
    /// In-range pair-mass recall vs the exact truth: of the probability
    /// mass the exact kernel gathers across in-range pairs of the
    /// measured queries, the fraction the forest surfaced.
    pub recall: f64,
    /// Query outcomes the recall was measured over (= `n` when exact).
    pub recall_queries: usize,
    /// Total variation distance between the ANN and exact
    /// reconstructions, when the exact one was run.
    pub tvd_vs_exact: Option<f64>,
    /// Whether both reconstructions agree on the most probable outcome.
    pub top1_matches: Option<bool>,
}

impl AnnBenchRow {
    /// Wall-clock speedup of the ANN path over the exact kernel.
    #[must_use]
    pub fn speedup_vs_exact(&self) -> Option<f64> {
        self.secs_exact.map(|e| e / self.secs_ann)
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct AnnBenchReport {
    /// Worker threads (the library's own default policy).
    pub threads: usize,
    /// True when run with `--quick` (CI smoke: one small row).
    pub quick: bool,
    /// Measured cells: the size ladder at default knobs first, then the
    /// knob sweep at the crossover-scale support.
    pub rows: Vec<AnnBenchRow>,
}

/// A clustered error-halo support with exactly `n` distinct outcomes:
/// `n / CLUSTER` random centers, each with `CLUSTER - 1` halo members
/// at 1–3 bit flips.
fn clustered(n: usize, rng: &mut StdRng) -> Distribution {
    let mut seen = HashSet::with_capacity(n);
    let mut pairs = Vec::with_capacity(n);
    while pairs.len() < n {
        let center: u64 = rng.gen();
        if seen.insert(center) {
            pairs.push((BitString::from_u128(u128::from(center), N_BITS), 4.0));
        }
        let mut members = 1;
        while members < CLUSTER && pairs.len() < n {
            let mut member = center;
            for _ in 0..rng.gen_range(1..=3) {
                member ^= 1u64 << rng.gen_range(0..N_BITS);
            }
            if seen.insert(member) {
                pairs.push((BitString::from_u128(u128::from(member), N_BITS), 1.0));
                members += 1;
            }
        }
    }
    Distribution::from_probs(N_BITS, pairs).expect("positive weights")
}

/// The benchmark's Hammer configuration: local neighborhood, given ANN
/// tuning.
fn config(ann: AnnTuning) -> HammerConfig {
    HammerConfig {
        neighborhood: NeighborhoodLimit::Fixed(MAX_D),
        kernel: KernelTuning {
            ann,
            ..KernelTuning::default()
        },
        ..HammerConfig::paper()
    }
}

/// ANN tuning for the bench: default knobs, crossover low enough that
/// every measured support takes the ANN path.
fn bench_tuning() -> AnnTuning {
    AnnTuning {
        crossover: 4096,
        ..AnnTuning::default()
    }
}

/// In-range pair-mass recall over the given query outcomes: exact truth
/// per query (an `O(N)` scan), forest candidates via `range_query`.
fn measure_recall(index: &AnnIndex, d: &Distribution, queries: &[usize]) -> f64 {
    let (keys, probs) = (d.keys(), d.probs());
    let (mut found, mut truth) = (0.0f64, 0.0f64);
    for &i in queries {
        for &(id, _) in &index.range_query(keys[i], d.keys_hi()[i], MAX_D) {
            found += probs[id as usize];
        }
        let xi = keys[i];
        for (j, &kj) in keys.iter().enumerate() {
            if ((xi ^ kj).count_ones() as usize) <= MAX_D {
                truth += probs[j];
            }
        }
    }
    if truth > 0.0 {
        found / truth
    } else {
        1.0
    }
}

/// Every index at or below [`FULL_RECALL_CAP`], a deterministic stride
/// sample of [`SAMPLED_QUERIES`] otherwise.
fn query_sample(n: usize) -> Vec<usize> {
    if n <= FULL_RECALL_CAP {
        (0..n).collect()
    } else {
        (0..n)
            .step_by(n / SAMPLED_QUERIES)
            .take(SAMPLED_QUERIES)
            .collect()
    }
}

/// Measures one `(support, tuning)` cell. `exact` carries the exact
/// reconstruction and its wall-clock seconds when affordable (computed
/// once per support and shared across the knob sweep).
fn run_case(
    d: &Distribution,
    tuning: AnnTuning,
    threads: usize,
    exact: Option<&(f64, Distribution)>,
) -> AnnBenchRow {
    let params = AnnParams::resolve(&tuning, d.len(), N_BITS);

    let start = Instant::now();
    let index = AnnIndex::build(d, &params, threads);
    let secs_build = start.elapsed().as_secs_f64();

    let queries = query_sample(d.len());
    let recall = measure_recall(&index, d, &queries);

    let hammer = Hammer::with_config(config(tuning)).with_threads(threads);
    let start = Instant::now();
    let approx = hammer.reconstruct(d);
    let secs_ann = start.elapsed().as_secs_f64();

    let (tvd, top1) = exact.map_or((None, None), |(_, e)| {
        let tvd: f64 = e
            .iter()
            .map(|(x, p)| (p - approx.prob(x)).abs())
            .sum::<f64>()
            / 2.0;
        let top1 = approx.most_probable().map(|(x, _)| x) == e.most_probable().map(|(x, _)| x);
        (Some(tvd), Some(top1))
    });
    AnnBenchRow {
        n: d.len(),
        trees: params.trees,
        bits_per_hash: params.bits_per_hash,
        probe_radius: params.probe_radius,
        secs_build,
        secs_ann,
        secs_exact: exact.map(|(s, _)| *s),
        recall,
        recall_queries: queries.len(),
        tvd_vs_exact: tvd,
        top1_matches: top1,
    }
}

/// Runs the sweep.
///
/// Quick mode (CI smoke) measures a single 8K-outcome row with an exact
/// oracle. The full sweep climbs the size ladder at default knobs —
/// 16K and 64K against the exact kernel, then ANN-only 256K and the
/// 1M reconstruct row no exact `2·N²` sweep can reach on this hardware
/// — and closes with a knob sweep (trees × probe radius) at 64K, the
/// largest support with a shared exact baseline.
#[must_use]
pub fn run(quick: bool) -> AnnBenchReport {
    let threads = Hammer::new().threads();
    let mut rng = StdRng::seed_from_u64(0xA22);
    let mut rows = Vec::new();

    let exact_for = |d: &Distribution, threads: usize| {
        let hammer = Hammer::with_config(config(AnnTuning {
            enabled: false,
            ..AnnTuning::default()
        }))
        .with_threads(threads);
        let start = Instant::now();
        let out = hammer.reconstruct(d);
        (start.elapsed().as_secs_f64(), out)
    };
    let announce = |r: &AnnBenchRow| {
        eprintln!(
            "[bench-ann] N={} trees={} k={} r={}: build {:.3} s, ann {:.3} s, exact {}, \
             recall {:.4} ({} queries){}",
            r.n,
            r.trees,
            r.bits_per_hash,
            r.probe_radius,
            r.secs_build,
            r.secs_ann,
            r.secs_exact
                .map_or_else(|| "skipped".into(), |s| format!("{s:.3} s")),
            r.recall,
            r.recall_queries,
            r.speedup_vs_exact()
                .map_or_else(String::new, |s| format!(", speedup {s:.2}x")),
        );
    };

    if quick {
        let d = clustered(1 << 13, &mut rng);
        let exact = exact_for(&d, threads);
        let row = run_case(&d, bench_tuning(), threads, Some(&exact));
        announce(&row);
        rows.push(row);
        return AnnBenchReport {
            threads,
            quick,
            rows,
        };
    }

    // The size ladder at default knobs.
    for &n in &[1usize << 14, 1 << 16] {
        let d = clustered(n, &mut rng);
        let exact = exact_for(&d, threads);
        let row = run_case(&d, bench_tuning(), threads, Some(&exact));
        announce(&row);
        rows.push(row);
    }
    for &n in &[1usize << 18, 1 << 20] {
        let d = clustered(n, &mut rng);
        let row = run_case(&d, bench_tuning(), threads, None);
        announce(&row);
        rows.push(row);
    }

    // The recall-vs-speed knob sweep at 64K, sharing one exact baseline.
    let d = clustered(1 << 16, &mut rng);
    let exact = exact_for(&d, threads);
    for (trees, probe_radius) in [(4, 1), (16, 1), (8, 0), (8, 2)] {
        let tuning = AnnTuning {
            trees,
            probe_radius,
            ..bench_tuning()
        };
        let row = run_case(&d, tuning, threads, Some(&exact));
        announce(&row);
        rows.push(row);
    }

    AnnBenchReport {
        threads,
        quick,
        rows,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |x| format!("{x:.6}"))
}

impl AnnBenchReport {
    /// The default-knob row at the 64K crossover scale (the headline
    /// recall/speedup cell), when present.
    #[must_use]
    pub fn headline(&self) -> Option<&AnnBenchRow> {
        self.rows.iter().find(|r| {
            r.n == 1 << 16 && r.trees == AnnTuning::default().trees && r.probe_radius == 1
        })
    }

    /// Serializes the sweep as the `BENCH_ann.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"n\": {}, \"trees\": {}, \"bits_per_hash\": {}, \"probe_radius\": {}, \
                 \"secs_build\": {:.6}, \"secs_ann\": {:.6}, \"secs_exact\": {}, \
                 \"speedup_vs_exact\": {}, \"recall\": {:.6}, \"recall_queries\": {}, \
                 \"tvd_vs_exact\": {}, \"top1_matches\": {}, \"measured\": true}}",
                r.n,
                r.trees,
                r.bits_per_hash,
                r.probe_radius,
                r.secs_build,
                r.secs_ann,
                json_opt(r.secs_exact),
                json_opt(r.speedup_vs_exact()),
                r.recall,
                r.recall_queries,
                r.tvd_vs_exact
                    .map_or_else(|| "null".into(), |d| format!("{d:.3e}")),
                r.top1_matches
                    .map_or_else(|| "null".into(), |b| b.to_string()),
            ));
        }
        let headline = self.headline();
        format!(
            "{{\n  \"artifact\": \"BENCH_ann\",\n  \
             \"description\": \"LSH-forest approximate scoring vs the exact blocked kernel on a \
             clustered error-halo workload (64 bits, Fixed(16) neighborhood). Exact cells are \
             measured wall clock; recall is in-range pair-mass recall against the exact truth, \
             over every outcome at small N and a deterministic query sample above {FULL_RECALL_CAP}. \
             The n=1048576 row is ANN-only: the exact 2*N^2 sweep is out of reach at that size.\",\n  \
             \"n_bits\": {N_BITS},\n  \"max_d\": {MAX_D},\n  \"threads\": {},\n  \"quick\": {},\n  \
             \"rows\": [\n{}\n  ],\n  \
             \"recall_at_default_65536\": {},\n  \"speedup_vs_exact_at_65536\": {}\n}}\n",
            self.threads,
            self.quick,
            rows,
            json_opt(headline.map(|r| r.recall)),
            json_opt(headline.and_then(AnnBenchRow::speedup_vs_exact)),
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "unique outcomes",
            "trees",
            "k",
            "radius",
            "build (s)",
            "ann (s)",
            "exact (s)",
            "speedup",
            "recall",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.n.to_string(),
                r.trees.to_string(),
                r.bits_per_hash.to_string(),
                r.probe_radius.to_string(),
                fnum(r.secs_build, 3),
                fnum(r.secs_ann, 3),
                r.secs_exact.map_or_else(|| "-".into(), |s| fnum(s, 3)),
                r.speedup_vs_exact()
                    .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
                fnum(r.recall, 4),
            ]);
        }
        format!(
            "\n=== bench-ann: LSH forest vs exact kernel (threads = {}) ===\n{table}",
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_case_measures_and_serializes() {
        // Benchmark-scale timings belong to the CI `bench-ann --quick`
        // step; this drives the same measurement loop over a tiny
        // support to guard the plumbing.
        let mut rng = StdRng::seed_from_u64(7);
        let d = clustered(4096, &mut rng);
        assert_eq!(d.len(), 4096, "the generator hits the target size");
        let hammer = Hammer::with_config(config(AnnTuning {
            enabled: false,
            ..AnnTuning::default()
        }))
        .with_threads(2);
        let exact = (0.1, hammer.reconstruct(&d));
        let row = run_case(&d, bench_tuning(), 2, Some(&exact));
        assert!(row.recall >= 0.9, "recall {} on the tiny case", row.recall);
        assert_eq!(row.recall_queries, 4096);
        assert_eq!(row.top1_matches, Some(true));
        assert!(row.tvd_vs_exact.unwrap() < 0.05);

        let report = AnnBenchReport {
            threads: 2,
            quick: true,
            rows: vec![row],
        };
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_ann\""));
        assert!(json.contains("\"recall\""));
        assert!(json.contains("\"measured\": true"));
        let text = report.render();
        assert!(text.contains("4096"));
    }

    #[test]
    fn query_sampling_kicks_in_above_the_cap() {
        assert_eq!(query_sample(100).len(), 100);
        let big = query_sample(FULL_RECALL_CAP * 8);
        assert_eq!(big.len(), SAMPLED_QUERIES);
        assert!(big.windows(2).all(|w| w[0] < w[1]));
    }
}

//! Fixed-angle QAOA schedules per problem family.
//!
//! Tuning every instance on hardware is what the variational loop does,
//! but for dataset-scale sweeps the paper (following Harrigan et al.)
//! evaluates circuits at good *fixed* angles. QAOA angles are known to
//! concentrate across instances and sizes of a family, so we tune once
//! per `(family, p)` on a small representative instance using the ideal
//! simulator — grid scan at `p = 1`, then layer-by-layer extension with
//! Nelder–Mead refinement — and reuse the schedule across the suite.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use hammer_circuits::qaoa_maxcut;
use hammer_graphs::MaxCut;
use hammer_qaoa::{NelderMead, QaoaParams};
use hammer_sim::simulate_ideal;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::GraphFamily;

/// Representative instance size used for tuning.
const TUNING_SIZE: usize = 8;

fn cache() -> &'static Mutex<HashMap<(String, usize), QaoaParams>> {
    static CACHE: OnceLock<Mutex<HashMap<(String, usize), QaoaParams>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The tuned fixed-angle schedule for a family at `p` layers.
///
/// Deterministic: the representative instance and the tuning procedure
/// are fully seeded, and results are cached per process.
///
/// # Panics
///
/// Panics if `p` is zero.
#[must_use]
pub fn tuned(family: GraphFamily, p: usize) -> QaoaParams {
    assert!(p >= 1, "QAOA needs at least one layer");
    let key = (family.name().to_string(), p);
    if let Some(hit) = cache().lock().expect("cache lock").get(&key) {
        return hit.clone();
    }
    let params = tune(family, p);
    cache()
        .lock()
        .expect("cache lock")
        .insert(key, params.clone());
    params
}

/// Ideal expected cost of `params` on the family's representative
/// instance (the tuning objective).
fn objective(problem: &MaxCut, flat: &[f64]) -> f64 {
    let params = QaoaParams::from_flat(flat);
    let dist = simulate_ideal(&qaoa_maxcut(problem.graph(), params.layers()));
    dist.expectation(|x| problem.cost(x))
}

fn representative(family: GraphFamily) -> MaxCut {
    let mut rng = StdRng::seed_from_u64(0xA4613);
    MaxCut::new(family.sample(TUNING_SIZE, &mut rng))
}

fn tune(family: GraphFamily, p: usize) -> QaoaParams {
    let problem = representative(family);
    if p == 1 {
        // Coarse grid over the fundamental angle domain, then refine.
        let mut best = (f64::INFINITY, 0.0, 0.0);
        let steps = 24;
        for gi in 0..steps {
            for bi in 0..steps {
                let gamma = std::f64::consts::PI * gi as f64 / steps as f64;
                let beta = std::f64::consts::PI * bi as f64 / steps as f64;
                let v = objective(&problem, &[gamma, beta]);
                if v < best.0 {
                    best = (v, gamma, beta);
                }
            }
        }
        let nm = NelderMead {
            max_iterations: 120,
            tolerance: 1e-8,
            initial_step: 0.1,
        };
        let r = nm.minimize(|x| objective(&problem, x), &[best.1, best.2]);
        return QaoaParams::from_flat(&r.x);
    }
    // Extend the (p−1)-layer schedule by duplicating its last layer,
    // then refine all 2p parameters.
    let prev = tuned(family, p - 1);
    let mut start = prev.to_flat();
    let last = prev.layers()[prev.p() - 1];
    start.push(last.gamma);
    start.push(last.beta);
    let nm = NelderMead {
        max_iterations: 250,
        tolerance: 1e-8,
        initial_step: 0.15,
    };
    let r = nm.minimize(|x| objective(&problem, x), &start);
    QaoaParams::from_flat(&r.x)
}

/// The ideal cost ratio the tuned schedule achieves on the family's
/// representative instance — the "Noiseless" reference line of Fig. 10.
#[must_use]
pub fn ideal_reference_cr(family: GraphFamily, p: usize) -> f64 {
    let problem = representative(family);
    let c_min = problem.brute_force().c_min;
    objective(&problem, &tuned(family, p).to_flat()) / c_min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p1_angles_beat_random_sampling() {
        for family in [
            GraphFamily::ThreeRegular,
            GraphFamily::Grid,
            GraphFamily::Ring,
        ] {
            let cr = ideal_reference_cr(family, 1);
            assert!(
                cr > 0.3,
                "{}: p=1 tuned CR {cr} should be well above random (0)",
                family.name()
            );
        }
    }

    #[test]
    fn deeper_schedules_do_not_regress() {
        // Ideal QAOA quality improves (weakly) with p at tuned angles —
        // the "Noiseless" curve of Fig. 10(a).
        let family = GraphFamily::ThreeRegular;
        let cr1 = ideal_reference_cr(family, 1);
        let cr2 = ideal_reference_cr(family, 2);
        let cr3 = ideal_reference_cr(family, 3);
        assert!(cr2 > cr1 - 0.02, "p2 {cr2} vs p1 {cr1}");
        assert!(cr3 > cr2 - 0.02, "p3 {cr3} vs p2 {cr2}");
    }

    #[test]
    fn tuning_is_cached_and_deterministic() {
        let a = tuned(GraphFamily::Grid, 2);
        let b = tuned(GraphFamily::Grid, 2);
        assert_eq!(a, b);
        assert_eq!(a.p(), 2);
    }
}

//! Figure 7: the step-by-step anatomy of one HAMMER run on BV-10.

use std::fmt::Write as _;

use hammer_circuits::BernsteinVazirani;
use hammer_core::Hammer;
use hammer_dist::{metrics, BitString};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::IbmBackend;
use crate::pipeline::{run_bv, Engine};
use crate::report::{fnum, section, Table};

/// Fig. 7(a–e): probabilities, CHS, weights, per-bin scores and
/// cumulative scores for the correct and top-incorrect outcomes of a
/// BV-10 run.
#[must_use]
pub fn fig7(quick: bool) -> String {
    let mut out = section(
        "fig7",
        "Anatomy of HAMMER on BV-10 (CHS, weights, scores)",
        "correct outcome's CHS peaks at low bins, average outcome's at n/2; \
         inverse-average weights + filtered scores close the probability gap \
         to the top incorrect outcome",
    );
    let key = BitString::ones(10);
    let bench = BernsteinVazirani::new(key);
    let device = IbmBackend::Manhattan.device(bench.num_qubits());
    let trials = if quick { 8192 } else { 32768 };
    let mut rng = StdRng::seed_from_u64(0x016700);
    let dist =
        run_bv(&bench, &device, Engine::Propagation, trials, &mut rng).expect("BV-10 pipeline");

    let hammer = Hammer::new();
    let trace = hammer.trace(&dist);

    // (a) the probability gap.
    let top_incorrect = dist
        .top_k(8)
        .into_iter()
        .find(|&(x, _)| x != key)
        .expect("some incorrect outcome");
    let _ = writeln!(
        out,
        "(a) P(correct {key}) = {}, P(top incorrect {}) = {} -> gap {}x",
        fnum(dist.prob(key), 4),
        top_incorrect.0,
        fnum(top_incorrect.1, 4),
        fnum(top_incorrect.1 / dist.prob(key).max(1e-12), 2),
    );

    // (b)-(d): CHS, weights and per-bin contributions.
    let b_correct = hammer.score_breakdown(&dist, key);
    let b_incorrect = hammer.score_breakdown(&dist, top_incorrect.0);
    let mut table = Table::new(&[
        "bin d",
        "CHS(correct)",
        "CHS(top incorrect)",
        "CHS(average)",
        "weight W[d]",
        "score term (correct)",
        "score term (incorrect)",
    ]);
    for d in 0..trace.max_distance {
        table.row_owned(vec![
            d.to_string(),
            fnum(b_correct.chs[d], 4),
            fnum(b_incorrect.chs[d], 4),
            fnum(trace.average_chs[d], 4),
            fnum(trace.weights[d], 3),
            fnum(b_correct.contributions[d], 4),
            fnum(b_incorrect.contributions[d], 4),
        ]);
    }
    let _ = write!(out, "{table}");

    // (e) cumulative scores and the final verdict.
    let _ = writeln!(
        out,
        "\n(e) cumulative score: correct = {}, top incorrect = {}",
        fnum(b_correct.score, 4),
        fnum(b_incorrect.score, 4),
    );
    let after = &trace.output;
    let _ = writeln!(
        out,
        "after HAMMER: P(correct) = {}, P(top incorrect) = {}",
        fnum(after.prob(key), 4),
        fnum(after.prob(top_incorrect.0), 4),
    );
    let _ = writeln!(
        out,
        "IST: {} -> {}",
        fnum(metrics::ist(&dist, &[key]), 3),
        fnum(metrics::ist(after, &[key]), 3),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig7_quick_renders_and_closes_the_gap() {
        let r = super::fig7(true);
        assert!(r.contains("cumulative score"));
        assert!(r.contains("IST"));
    }
}

//! Figure 6: the Hamming-graph view of an output distribution.

use std::fmt::Write as _;

use hammer_dist::{BitString, Distribution};

use crate::report::{fnum, section, Table};

/// Fig. 6: the paper's 3-qubit example distribution and its Hamming
/// graph: although `101` is most frequent, the correct outcome `111`
/// has the richer distance-1 neighborhood.
#[must_use]
pub fn fig6() -> String {
    let mut out = section(
        "fig6",
        "Hamming-graph representation of an output distribution",
        "'111' occurs less often than '101' but has more observed neighbors \
         at Hamming distance 1",
    );
    let dist = Distribution::from_probs(
        3,
        [
            (BitString::parse("111").expect("valid"), 0.30),
            (BitString::parse("101").expect("valid"), 0.40),
            (BitString::parse("110").expect("valid"), 0.05),
            (BitString::parse("011").expect("valid"), 0.10),
            (BitString::parse("010").expect("valid"), 0.10),
            (BitString::parse("001").expect("valid"), 0.05),
        ],
    )
    .expect("valid distribution");

    let mut table = Table::new(&[
        "outcome",
        "prob",
        "d=1 neighbors observed",
        "count",
        "d=1 neighbor mass",
    ]);
    for (x, p) in dist.iter() {
        let neighbors: Vec<(BitString, f64)> = x
            .neighbors_at(1)
            .filter_map(|nb| {
                let q = dist.prob(nb);
                (q > 0.0).then_some((nb, q))
            })
            .collect();
        let names: Vec<String> = neighbors.iter().map(|(nb, _)| nb.to_string()).collect();
        let mass: f64 = neighbors.iter().map(|&(_, q)| q).sum();
        table.row_owned(vec![
            x.to_string(),
            fnum(p, 2),
            names.join(","),
            neighbors.len().to_string(),
            fnum(mass, 2),
        ]);
    }
    let _ = write!(out, "{table}");

    let count_of = |s: &str| {
        BitString::parse(s)
            .expect("valid")
            .neighbors_at(1)
            .filter(|nb| dist.prob(*nb) > 0.0)
            .count()
    };
    let _ = writeln!(
        out,
        "\ncorrect '111' has {} observed d=1 neighbors vs {} for the most \
         frequent outcome '101'",
        count_of("111"),
        count_of("101"),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig6_shows_neighborhood_asymmetry() {
        let r = super::fig6();
        assert!(r.contains("111"));
        assert!(r.contains("3 observed d=1 neighbors vs 2"));
    }
}

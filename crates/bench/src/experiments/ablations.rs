//! Ablation studies over HAMMER's design choices (DESIGN.md §5).
//!
//! Each ablation reruns a fixed BV workload under configuration variants
//! and reports the geometric-mean PST improvement, isolating how much
//! each ingredient of Algorithm 1 contributes.

use std::fmt::Write as _;

use hammer_core::{FilterRule, Hammer, HammerConfig, NeighborhoodLimit, WeightScheme};
use hammer_dist::{metrics, stats, Distribution};
use hammer_sim::ReadoutMitigator;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::{ibm_bv_suite, BvInstance};
use crate::pipeline::{run_bv, Engine};
use crate::report::{fnum, section, Table};

/// The shared workload: every suite instance's baseline distribution,
/// paired with its correct answer.
fn workload(quick: bool) -> Vec<(BvInstance, Distribution)> {
    let suite = ibm_bv_suite(quick);
    let trials = if quick { 2048 } else { 8192 };
    suite
        .into_iter()
        .map(|inst| {
            let device = inst.backend.device(inst.bench.num_qubits());
            let mut rng = StdRng::seed_from_u64(0xAB1A ^ inst.bench.key().as_u64().rotate_left(17));
            let dist = run_bv(&inst.bench, &device, Engine::Propagation, trials, &mut rng)
                .expect("BV pipeline");
            (inst, dist)
        })
        .collect()
}

/// Geometric-mean PST improvement of a configuration over the baseline
/// distributions.
fn gmean_pst_gain(work: &[(BvInstance, Distribution)], config: HammerConfig) -> f64 {
    let hammer = Hammer::with_config(config);
    let gains: Vec<f64> = work
        .iter()
        .map(|(inst, dist)| {
            let key = [inst.bench.key()];
            let after = hammer.reconstruct(dist);
            metrics::pst(&after, &key) / metrics::pst(dist, &key).max(1e-12)
        })
        .collect();
    stats::geometric_mean(&gains).expect("non-empty workload")
}

/// Ablation 1: the neighborhood cutoff `d < n/2`.
#[must_use]
pub fn neighborhood(quick: bool) -> String {
    let mut out = section(
        "ablation-neighborhood",
        "Neighborhood cutoff: d < n/2 (paper) vs fixed vs unbounded",
        "§4.2 predicts tiny neighborhoods miss multi-bit errors while \
         unbounded ones dilute the score toward uniformity",
    );
    let work = workload(quick);
    let mut table = Table::new(&["neighborhood limit", "gmean PST gain"]);
    for (name, limit) in [
        ("d < n/2 (paper)", NeighborhoodLimit::HalfWidth),
        ("d < 2", NeighborhoodLimit::Fixed(2)),
        ("d < 3", NeighborhoodLimit::Fixed(3)),
        ("unbounded", NeighborhoodLimit::Unbounded),
    ] {
        let cfg = HammerConfig {
            neighborhood: limit,
            ..HammerConfig::paper()
        };
        table.row_owned(vec![name.into(), fnum(gmean_pst_gain(&work, cfg), 3)]);
    }
    let _ = write!(out, "{table}");
    out
}

/// Ablation 2: the weight scheme.
#[must_use]
pub fn weights(quick: bool) -> String {
    let mut out = section(
        "ablation-weights",
        "Weight scheme: inverse average CHS (paper) vs variants",
        "inverting the measured average CHS should beat uniform weights and \
         the literal Algorithm-1 (summed) reading, which degenerates to \
         P_out proportional to P_in^2",
    );
    let work = workload(quick);
    let mut table = Table::new(&["weight scheme", "gmean PST gain"]);
    for (name, scheme) in [
        (
            "inverse average CHS (paper)",
            WeightScheme::InverseAverageChs,
        ),
        (
            "inverse summed CHS (Alg. 1 literal)",
            WeightScheme::InverseGlobalChs,
        ),
        ("uniform", WeightScheme::Uniform),
        (
            "inverse binomial (theoretical)",
            WeightScheme::InverseBinomial,
        ),
    ] {
        let cfg = HammerConfig {
            weights: scheme,
            ..HammerConfig::paper()
        };
        table.row_owned(vec![name.into(), fnum(gmean_pst_gain(&work, cfg), 3)]);
    }
    let _ = write!(out, "{table}");
    out
}

/// Ablation 3: the π filter.
#[must_use]
pub fn filter(quick: bool) -> String {
    let mut out = section(
        "ablation-filter",
        "Filter: credit only from lower-probability neighbors (paper) vs none",
        "§4.4: without the filter, low-probability strings free-ride on rich \
         neighborhoods and the correction weakens",
    );
    let work = workload(quick);
    let mut table = Table::new(&["filter", "gmean PST gain"]);
    for (name, rule) in [
        ("P(x) > P(y) (paper)", FilterRule::LowerProbabilityOnly),
        ("none", FilterRule::None),
    ] {
        let cfg = HammerConfig {
            filter: rule,
            ..HammerConfig::paper()
        };
        table.row_owned(vec![name.into(), fnum(gmean_pst_gain(&work, cfg), 3)]);
    }
    let _ = write!(out, "{table}");
    out
}

/// Ablation 4: composing HAMMER with readout mitigation.
#[must_use]
pub fn mitigation(quick: bool) -> String {
    let mut out = section(
        "ablation-mitigation",
        "Composition with readout mitigation (the Google-baseline pipeline)",
        "readout correction and HAMMER attack different error sources; the \
         composition should beat either alone",
    );
    let work = workload(quick);
    let hammer = Hammer::new();

    let mut gains: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (inst, dist) in &work {
        let key = [inst.bench.key()];
        let base = metrics::pst(dist, &key).max(1e-12);
        // NOTE: mitigation here runs on the logical (data-register)
        // distribution with the data qubits' calibrations.
        let device = inst.backend.device(inst.bench.num_qubits());
        let cals: Vec<_> = (0..inst.bench.num_data_qubits())
            .map(|q| device.noise().readout(q))
            .collect();
        let mitigator = ReadoutMitigator::new(cals);
        let mitigated = mitigator.mitigate(dist).expect("widths match");
        gains[0].push(metrics::pst(&mitigated, &key) / base);
        gains[1].push(metrics::pst(&hammer.reconstruct(dist), &key) / base);
        gains[2].push(metrics::pst(&hammer.reconstruct(&mitigated), &key) / base);
    }
    let mut table = Table::new(&["pipeline", "gmean PST gain"]);
    for (name, g) in [
        ("readout mitigation only", &gains[0]),
        ("HAMMER only", &gains[1]),
        ("mitigation -> HAMMER", &gains[2]),
    ] {
        table.row_owned(vec![
            name.into(),
            fnum(stats::geometric_mean(g).expect("non-empty"), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_ablation_quick_shows_paper_config_wins_or_ties() {
        let r = filter(true);
        assert!(r.contains("paper"));
        assert!(r.contains("none"));
    }
}

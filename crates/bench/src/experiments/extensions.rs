//! Extensions beyond the numbered figures: the §3.1 GHZ observation and
//! the Ensemble-of-Diverse-Mappings comparison from the related-work
//! discussion (§8).

use std::fmt::Write as _;

use hammer_core::Hammer;
use hammer_dist::{metrics, stats, BitString, HammingSpectrum};
use hammer_sim::{DeviceModel, NoiseEngine, TrajectoryEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::{ibm_bv_suite, IbmBackend};
use crate::pipeline::{run_bv, run_bv_edm, Engine};
use crate::report::{fnum, section, Table};

/// §3.1: the GHZ-10 observation that motivated the paper — correct
/// outcomes hold ~45 % of the mass and the dominant incorrect outcomes
/// sit within Hamming distance two of a correct answer.
#[must_use]
pub fn sec3_ghz(quick: bool) -> String {
    let mut out = section(
        "sec3-ghz",
        "GHZ-10 error structure (the paper's opening observation)",
        "correct outcomes ~45% cumulative; majority of dominant incorrect \
         outcomes within Hamming distance 2 of a correct answer",
    );
    let n = 10;
    let circuit = hammer_circuits::ghz(n);
    let correct = hammer_circuits::ghz_correct_outcomes(n);
    let device = DeviceModel::ibm_manhattan(n);
    let trials = if quick { 4096 } else { 16384 };
    let mut rng = StdRng::seed_from_u64(0x53C3);
    let dist = TrajectoryEngine::new(&device)
        .noisy_distribution(&circuit, trials, &mut rng)
        .expect("GHZ pipeline");

    let correct_mass = metrics::pst(&dist, &correct);
    let _ = writeln!(
        out,
        "correct outcomes: {}% of the mass; incorrect: {}%",
        fnum(100.0 * correct_mass, 1),
        fnum(100.0 * (1.0 - correct_mass), 1),
    );

    // The dominant incorrect outcomes and their distances.
    let mut table = Table::new(&["outcome", "probability", "min distance to a correct answer"]);
    let mut within_two = 0usize;
    let dominant: Vec<(BitString, f64)> = dist
        .top_k(12)
        .into_iter()
        .filter(|&(x, _)| !correct.contains(&x))
        .take(8)
        .collect();
    for &(x, p) in &dominant {
        let d = x.min_distance_to(&correct);
        if d <= 2 {
            within_two += 1;
        }
        table.row_owned(vec![x.to_string(), fnum(p, 4), d.to_string()]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\n{within_two}/{} dominant incorrect outcomes lie within distance 2",
        dominant.len()
    );

    let spectrum = HammingSpectrum::new(&dist, &correct);
    let _ = writeln!(
        out,
        "EHD = {} (uniform-error model: {}); bin totals: {}",
        fnum(metrics::ehd(&dist, &correct), 3),
        fnum(metrics::uniform_ehd(n), 1),
        spectrum
            .bins()
            .iter()
            .map(|b| fnum(b.total, 3))
            .collect::<Vec<_>>()
            .join(" "),
    );
    out
}

/// §8 comparison: Ensemble of Diverse Mappings (the post-processing
/// related work) vs HAMMER vs their composition on the BV suite.
#[must_use]
pub fn ext_edm(quick: bool) -> String {
    let mut out = section(
        "ext-edm",
        "Ensemble of Diverse Mappings vs HAMMER (post-processing baselines)",
        "EDM averages out mapping-specific correlated errors; HAMMER \
         exploits Hamming structure — the paper argues they are \
         complementary, so the composition should win",
    );
    let suite = ibm_bv_suite(quick);
    let suite = if quick {
        &suite[..]
    } else {
        &suite[..suite.len().min(36)]
    };
    let trials = if quick { 2048 } else { 8192 };
    let mappings = 4;

    let hammer = Hammer::new();
    let mut gains: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for inst in suite {
        // Give the device two spare qubits so rotated mappings differ.
        let device = inst.backend.device(inst.bench.num_qubits() + 2);
        let key = [inst.bench.key()];
        let seed = 0xED13 ^ inst.bench.key().as_u64().rotate_left(9);

        let mut rng = StdRng::seed_from_u64(seed);
        let baseline = run_bv(&inst.bench, &device, Engine::Propagation, trials, &mut rng)
            .expect("BV pipeline");
        let mut rng = StdRng::seed_from_u64(seed);
        let edm = run_bv_edm(
            &inst.bench,
            &device,
            Engine::Propagation,
            trials,
            mappings,
            &mut rng,
        )
        .expect("EDM pipeline");

        let base_pst = metrics::pst(&baseline, &key).max(1e-12);
        gains[0].push(metrics::pst(&edm, &key) / base_pst);
        gains[1].push(metrics::pst(&hammer.reconstruct(&baseline), &key) / base_pst);
        gains[2].push(metrics::pst(&hammer.reconstruct(&edm), &key) / base_pst);
    }

    let mut table = Table::new(&["pipeline", "gmean PST gain vs single-mapping baseline"]);
    for (name, g) in [
        (format!("EDM ({mappings} mappings)"), &gains[0]),
        ("HAMMER".to_string(), &gains[1]),
        ("EDM + HAMMER".to_string(), &gains[2]),
    ] {
        table.row_owned(vec![
            name,
            fnum(stats::geometric_mean(g).expect("non-empty"), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\ncircuits: {} (trial budget {} per pipeline)",
        suite.len(),
        trials
    );
    out
}

/// §6.4 "Results on IBM Dataset": 140 QAOA circuits on the three IBM
/// backends; HAMMER must reduce the TVD to the ideal distribution and
/// raise the CR (paper: TVD ÷ 1.23, CR × 1.39 on average).
#[must_use]
pub fn sec64_ibm_qaoa(quick: bool) -> String {
    use crate::angles;
    use crate::datasets::{ibm_qaoa_3reg_suite, ibm_qaoa_rand_suite, trials};
    use hammer_core::HammerConfig;
    use hammer_qaoa::{PostProcess, QaoaRunner};

    let mut out = section(
        "sec64-ibm-qaoa",
        "IBM QAOA dataset: TVD and CR before/after HAMMER",
        "across 140 QAOA circuits, TVD to the ideal output decreases 1.23x \
         and CR increases 1.39x on average",
    );
    let mut suite = ibm_qaoa_3reg_suite(quick);
    suite.extend(ibm_qaoa_rand_suite(quick));
    let shots = trials(false, quick);

    let mut tvd_ratios = Vec::new();
    let mut cr_gains = Vec::new();
    let mut cr_wins = 0usize;
    for (i, inst) in suite.iter().enumerate() {
        let backend = IbmBackend::ALL[i % 3];
        let runner = QaoaRunner::new(
            hammer_graphs::MaxCut::new(inst.graph.clone()),
            backend.device(inst.n()),
        )
        .trials(shots);
        let params = angles::tuned(inst.family, inst.p);
        let ideal = runner.ideal(&params);
        let mut rng = StdRng::seed_from_u64(0x641B ^ i as u64);
        let outcomes = runner
            .run_multi(
                &params,
                &[
                    PostProcess::Baseline,
                    PostProcess::Hammer(HammerConfig::paper()),
                ],
                &mut rng,
            )
            .expect("QAOA pipeline");
        let tvd_base = metrics::tvd(&outcomes[0].distribution, &ideal.distribution);
        let tvd_ham = metrics::tvd(&outcomes[1].distribution, &ideal.distribution);
        if tvd_ham > 1e-9 {
            tvd_ratios.push(tvd_base / tvd_ham);
        }
        if outcomes[0].cost_ratio > 0.0 && outcomes[1].cost_ratio > 0.0 {
            cr_gains.push(outcomes[1].cost_ratio / outcomes[0].cost_ratio);
        }
        if outcomes[1].cost_ratio > outcomes[0].cost_ratio {
            cr_wins += 1;
        }
    }

    let mut table = Table::new(&["metric", "paper", "measured (gmean)"]);
    table.row_owned(vec![
        "TVD reduction".into(),
        "1.23x".into(),
        format!(
            "{}x over {} circuits",
            fnum(stats::geometric_mean(&tvd_ratios).unwrap_or(1.0), 3),
            tvd_ratios.len()
        ),
    ]);
    table.row_owned(vec![
        "CR improvement".into(),
        "1.39x".into(),
        format!(
            "{}x over {} circuits",
            fnum(stats::geometric_mean(&cr_gains).unwrap_or(1.0), 3),
            cr_gains.len()
        ),
    ]);
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nCR improved on {cr_wins}/{} circuits ({} 3-regular + random-graph \
         instances across the three backends)",
        suite.len(),
        suite.len(),
    );
    out
}

/// Extension: idling errors (the ADAPT-cited error source). Adds a
/// per-moment idle fault rate and shows that SWAP-heavy routed circuits
/// — whose schedules stretch — lose additional Hamming structure, while
/// HAMMER keeps improving them.
#[must_use]
pub fn ext_idle(quick: bool) -> String {
    let mut out = section(
        "ext-idle",
        "Idling errors: schedule length vs Hamming structure",
        "idle decoherence penalizes stretched (SWAP-heavy) schedules; EHD \
         grows with the idle rate and HAMMER's PST gain persists",
    );
    let key = BitString::parse(if quick { "110101101" } else { "11010110101" }).expect("valid key");
    let bench = hammer_circuits::BernsteinVazirani::new(key);
    let base = IbmBackend::Paris.device(bench.num_qubits());
    let trials = if quick { 4096 } else { 16384 };
    let hammer = Hammer::new();

    let mut table = Table::new(&[
        "idle rate / moment",
        "PST baseline",
        "PST HAMMER",
        "gain",
        "EHD",
    ]);
    for &idle in &[0.0, 0.001, 0.003, 0.01] {
        let device = base.with_noise(base.noise().clone().with_idle_rate(idle));
        let mut rng = StdRng::seed_from_u64(0x1D7E);
        let baseline =
            run_bv(&bench, &device, Engine::Propagation, trials, &mut rng).expect("BV pipeline");
        let recovered = hammer.reconstruct(&baseline);
        let keys = [key];
        table.row_owned(vec![
            fnum(idle, 3),
            fnum(metrics::pst(&baseline, &keys), 4),
            fnum(metrics::pst(&recovered, &keys), 4),
            fnum(
                metrics::pst(&recovered, &keys) / metrics::pst(&baseline, &keys).max(1e-12),
                2,
            ),
            fnum(metrics::ehd(&baseline, &keys), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    let routed = hammer_sim::transpile(&bench.circuit(), base.coupling()).expect("routable");
    let _ = writeln!(
        out,
        "\nrouted schedule: depth {}, {} SWAPs — every extra moment is an \
         idle-fault opportunity on waiting qubits",
        routed.circuit().depth(),
        routed.swaps_inserted(),
    );
    out
}

/// Extension: the wide-register sweep the paper's narrative targets but
/// the dense layer could never reach — noisy BV and GHZ at 64–128
/// qubits, sampled exactly on the stabilizer (tableau) engine and
/// post-processed with HAMMER.
#[must_use]
pub fn ext_wide(quick: bool) -> String {
    use hammer_sim::StabilizerEngine;

    let mut out = section(
        "ext-wide",
        "Wide circuits on the stabilizer path (64-128 qubits)",
        "HAMMER targets machines with hundreds of qubits; BV/GHZ are \
         Clifford, so the tableau engine samples their noisy counts \
         exactly where 2^n amplitudes are unthinkable — PST gains \
         persist at 64-128 qubits",
    );
    let trials = if quick { 2048 } else { 8192 };
    let hammer = Hammer::new();
    let mut table = Table::new(&[
        "benchmark",
        "qubits",
        "unique",
        "PST baseline",
        "PST HAMMER",
        "gain",
        "EHD",
    ]);

    let bv_widths: &[usize] = if quick { &[64] } else { &[64, 96, 127] };
    for &w in bv_widths {
        let bench = hammer_circuits::BernsteinVazirani::new(crate::stab_bench::wide_bv_key(w));
        let circuit = bench.circuit();
        let device = DeviceModel::google_sycamore(circuit.num_qubits());
        let mut rng = StdRng::seed_from_u64(0x71DE ^ w as u64);
        let counts = StabilizerEngine::new(&device)
            .sample(&circuit, trials, &mut rng)
            .expect("wide BV is Clifford");
        let noisy = bench.data_counts(&counts).to_distribution();
        let recovered = hammer.reconstruct(&noisy);
        let keys = [bench.key()];
        table.row_owned(vec![
            format!("bv-{w}"),
            circuit.num_qubits().to_string(),
            noisy.len().to_string(),
            fnum(metrics::pst(&noisy, &keys), 4),
            fnum(metrics::pst(&recovered, &keys), 4),
            fnum(
                metrics::pst(&recovered, &keys) / metrics::pst(&noisy, &keys).max(1e-12),
                2,
            ),
            fnum(metrics::ehd(&noisy, &keys), 3),
        ]);
    }
    let ghz_widths: &[usize] = if quick { &[64] } else { &[64, 96, 128] };
    for &w in ghz_widths {
        let circuit = hammer_circuits::ghz(w);
        let correct = hammer_circuits::ghz_correct_outcomes(w);
        let device = DeviceModel::google_sycamore(w);
        let mut rng = StdRng::seed_from_u64(0x61DE ^ w as u64);
        let noisy = StabilizerEngine::new(&device)
            .noisy_distribution(&circuit, trials, &mut rng)
            .expect("wide GHZ is Clifford");
        let recovered = hammer.reconstruct(&noisy);
        table.row_owned(vec![
            format!("ghz-{w}"),
            w.to_string(),
            noisy.len().to_string(),
            fnum(metrics::pst(&noisy, &correct), 4),
            fnum(metrics::pst(&recovered, &correct), 4),
            fnum(
                metrics::pst(&recovered, &correct) / metrics::pst(&noisy, &correct).max(1e-12),
                2,
            ),
            fnum(metrics::ehd(&noisy, &correct), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nengine: stabilizer tableau (O(n) bit-ops per gate); the dense \
         state-vector layer caps at {} qubits",
        hammer_sim::MAX_DENSE_QUBITS,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sec3_quick_renders() {
        let r = super::sec3_ghz(true);
        assert!(r.contains("correct outcomes"));
        assert!(r.contains("EHD"));
    }

    #[test]
    fn ext_wide_quick_renders() {
        let r = super::ext_wide(true);
        assert!(r.contains("bv-64"));
        assert!(r.contains("ghz-64"));
        assert!(r.contains("stabilizer"));
    }

    #[test]
    fn ext_idle_quick_renders() {
        let r = super::ext_idle(true);
        assert!(r.contains("idle rate"));
        assert!(r.contains("SWAPs"));
    }
}

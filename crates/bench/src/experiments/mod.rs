//! One experiment per table/figure of the paper (see `DESIGN.md` §4 for
//! the full index). Every experiment renders a plain-text report with
//! the paper's expected shape quoted next to our measured series.

mod ablations;
mod extensions;
mod fig01;
mod fig02;
mod fig03;
mod fig05;
mod fig06;
mod fig07;
mod fig08;
mod fig09;
mod fig10;
mod fig11;
mod fig12;
mod tables;

/// All experiment identifiers, in paper order.
pub const ALL_IDS: &[&str] = &[
    "fig1a",
    "fig1b",
    "fig1c",
    "fig2b",
    "fig2d",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig5",
    "fig6",
    "fig7",
    "fig8a",
    "fig8b",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "table1",
    "table2",
    "table3",
    "ablation-neighborhood",
    "ablation-weights",
    "ablation-filter",
    "ablation-mitigation",
    "sec3-ghz",
    "sec64-ibm-qaoa",
    "ext-edm",
    "ext-idle",
    "ext-wide",
];

/// Runs one experiment by id; `quick` shrinks instance counts, sizes and
/// trial counts so the whole suite finishes in minutes.
///
/// Returns `None` for an unknown id.
#[must_use]
pub fn run(id: &str, quick: bool) -> Option<String> {
    let report = match id {
        "fig1a" => fig01::fig1a(quick),
        "fig1b" => fig01::fig1b(quick),
        "fig1c" => fig01::fig1c(quick),
        "fig2b" => fig02::fig2b(quick),
        "fig2d" => fig02::fig2d(quick),
        "fig3a" => fig03::fig3a(),
        "fig3b" => fig03::fig3b(quick),
        "fig3c" => fig03::fig3c(quick),
        "fig5" => fig05::fig5(quick),
        "fig6" => fig06::fig6(),
        "fig7" => fig07::fig7(quick),
        "fig8a" => fig08::fig8a(quick),
        "fig8b" => fig08::fig8b(quick),
        "fig9a" => fig09::fig9a(quick),
        "fig9b" => fig09::fig9b(quick),
        "fig9c" => fig09::fig9c(quick),
        "fig9d" => fig09::fig9d(quick),
        "fig10a" => fig10::fig10a(quick),
        "fig10b" => fig10::fig10b(quick),
        "fig11" => fig11::fig11(quick),
        "fig12" => fig12::fig12(quick),
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "table3" => tables::table3(quick),
        "ablation-neighborhood" => ablations::neighborhood(quick),
        "ablation-weights" => ablations::weights(quick),
        "ablation-filter" => ablations::filter(quick),
        "ablation-mitigation" => ablations::mitigation(quick),
        "sec3-ghz" => extensions::sec3_ghz(quick),
        "sec64-ibm-qaoa" => extensions::sec64_ibm_qaoa(quick),
        "ext-edm" => extensions::ext_edm(quick),
        "ext-idle" => extensions::ext_idle(quick),
        "ext-wide" => extensions::ext_wide(quick),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("fig99", true).is_none());
    }

    #[test]
    fn all_ids_are_distinct() {
        let mut ids = ALL_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_IDS.len());
    }

    #[test]
    fn small_experiments_render() {
        // The cheap, deterministic experiments run inside the test
        // suite; the heavyweight ones are covered by the repro binary.
        for id in ["fig3a", "fig6", "table1", "table2"] {
            let r = run(id, true).unwrap();
            assert!(r.contains(id), "{id} report should name itself:\n{r}");
            assert!(r.len() > 100, "{id} report suspiciously short");
        }
    }
}

//! Figure 12: EHD growth with circuit width for every benchmark family,
//! on IBM-like and Google-like devices.

use std::fmt::Write as _;

use hammer_circuits::BernsteinVazirani;
use hammer_dist::{metrics, BitString};
use hammer_graphs::MaxCut;
use hammer_qaoa::QaoaRunner;
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{GraphFamily, IbmBackend, QaoaInstance};
use crate::pipeline::{run_bv, Engine};
use crate::report::{fnum, section, Table};

fn qaoa_ehd(family: GraphFamily, n: usize, p: usize, device: DeviceModel, trials: u64) -> f64 {
    let inst = QaoaInstance::with_seed(family, n, p, 0);
    let runner = QaoaRunner::new(MaxCut::new(inst.graph.clone()), device).trials(trials);
    let params = angles::tuned(family, p);
    let mut rng = StdRng::seed_from_u64(0x016C ^ (n as u64) << 8 ^ p as u64);
    let outcome = runner.run(&params, &mut rng).expect("QAOA pipeline");
    metrics::ehd(&outcome.distribution, runner.optimal_cuts())
}

fn bv_ehd(n: usize, trials: u64) -> f64 {
    let bench = BernsteinVazirani::new(BitString::ones(n));
    let device = IbmBackend::Paris.device(bench.num_qubits());
    let mut rng = StdRng::seed_from_u64(0x016CB ^ n as u64);
    let dist = run_bv(&bench, &device, Engine::Propagation, trials, &mut rng).expect("BV pipeline");
    metrics::ehd(&dist, &[bench.key()])
}

/// Fig. 12(a–b): EHD vs width for BV and QAOA families on both device
/// styles, against the uniform-error `n/2` line.
#[must_use]
pub fn fig12(quick: bool) -> String {
    let mut out = section(
        "fig12",
        "EHD vs qubits for all benchmark families (IBM-like and Google-like)",
        "EHD grows with n, stays below n/2 everywhere; BV loses structure \
         fastest (super-linear depth); deeper p loses structure faster",
    );
    let (sizes, trials): (Vec<usize>, u64) = if quick {
        (vec![6, 8, 10, 12], 2048)
    } else {
        ((6..=20).step_by(2).collect(), 8192)
    };

    let _ = writeln!(out, "\n(a) IBM-Paris-like device");
    let mut table = Table::new(&[
        "n",
        "BV (111..1)",
        "3reg QAOA p=2",
        "3reg QAOA p=4",
        "uniform n/2",
    ]);
    for &n in &sizes {
        table.row_owned(vec![
            n.to_string(),
            fnum(bv_ehd(n, trials), 3),
            fnum(
                qaoa_ehd(
                    GraphFamily::ThreeRegular,
                    n,
                    2,
                    IbmBackend::Paris.device(n),
                    trials,
                ),
                3,
            ),
            fnum(
                qaoa_ehd(
                    GraphFamily::ThreeRegular,
                    n,
                    4,
                    IbmBackend::Paris.device(n),
                    trials,
                ),
                3,
            ),
            fnum(metrics::uniform_ehd(n), 1),
        ]);
    }
    let _ = write!(out, "{table}");

    let _ = writeln!(out, "\n(b) Google-Sycamore-like device");
    let mut table = Table::new(&["n", "3reg QAOA p=3", "grid QAOA p=4", "uniform n/2"]);
    for &n in &sizes {
        if n > 16 {
            // The Google 3-regular suite stops at 16 nodes (Table 1).
            continue;
        }
        table.row_owned(vec![
            n.to_string(),
            fnum(
                qaoa_ehd(
                    GraphFamily::ThreeRegular,
                    n,
                    3,
                    DeviceModel::google_sycamore(n),
                    trials,
                ),
                3,
            ),
            fnum(
                qaoa_ehd(
                    GraphFamily::Grid,
                    n,
                    4,
                    DeviceModel::google_sycamore(n),
                    trials,
                ),
                3,
            ),
            fnum(metrics::uniform_ehd(n), 1),
        ]);
    }
    let _ = write!(out, "{table}");
    out.push_str("\nevery series sits below n/2: structure persists at scale.\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn bv_ehd_grows_with_width() {
        let small = super::bv_ehd(5, 2048);
        let large = super::bv_ehd(11, 2048);
        assert!(large > small, "EHD should grow: {small} -> {large}");
    }
}

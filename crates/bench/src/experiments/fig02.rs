//! Figure 2: background illustrations — (b) ideal vs noisy BV-3 output,
//! (d) ideal vs noisy QAOA-9 expectation.

use std::fmt::Write as _;

use hammer_circuits::BernsteinVazirani;
use hammer_dist::{metrics, BitString};
use hammer_qaoa::QaoaRunner;
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{GraphFamily, IbmBackend, QaoaInstance};
use crate::pipeline::{run_bv, Engine};
use crate::report::{bar, fnum, section, Table};

/// Fig. 2(b): ideal vs noisy output of the BV-3 circuit with key `111`.
#[must_use]
pub fn fig2b(quick: bool) -> String {
    let mut out = section(
        "fig2b",
        "Ideal vs noisy output of a 3-qubit Bernstein-Vazirani circuit",
        "ideal machine returns '111' with probability 1; hardware errors \
         produce '011', '101' and other nearby outcomes",
    );
    let key = BitString::ones(3);
    let bench = BernsteinVazirani::new(key);
    let device = DeviceModel::ibm_manhattan(bench.num_qubits());
    let trials = if quick { 2048 } else { 8192 };
    let mut rng = StdRng::seed_from_u64(0x01620B);
    let noisy =
        run_bv(&bench, &device, Engine::Trajectory, trials, &mut rng).expect("BV-3 pipeline");

    let mut table = Table::new(&["outcome", "ideal", "noisy", "histogram"]);
    for bits in 0..8u64 {
        let x = BitString::new(bits, 3);
        let ideal = if x == key { 1.0 } else { 0.0 };
        let p = noisy.prob(x);
        table.row_owned(vec![
            x.to_string(),
            fnum(ideal, 2),
            fnum(p, 4),
            bar(p, 1.0, 30),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nnoisy PST = {}; every incorrect outcome with visible mass sits 1-2 \
         flips from the key",
        fnum(metrics::pst(&noisy, &[key]), 3)
    );
    out
}

/// Fig. 2(d): ideal vs noisy expected cost of a QAOA-9 instance.
#[must_use]
pub fn fig2d(quick: bool) -> String {
    let mut out = section(
        "fig2d",
        "Ideal vs noisy QAOA-9 output (expected cost collapse)",
        "ideal E(x) = 3.75 vs noisy E(x) = -0.42 on IBM-Paris: suboptimal \
         outcomes drag the expectation toward zero",
    );
    let n = 9;
    let inst = QaoaInstance::with_seed(GraphFamily::ErdosRenyi(0.4), n, 2, 1);
    let problem = hammer_graphs::MaxCut::new(inst.graph.clone());
    let runner = QaoaRunner::new(problem, IbmBackend::Paris.device(n)).trials(if quick {
        2048
    } else {
        8192
    });
    let params = angles::tuned(GraphFamily::ErdosRenyi(0.4), 2);

    let ideal = runner.ideal(&params);
    let mut rng = StdRng::seed_from_u64(0x01620D);
    let noisy = runner.run(&params, &mut rng).expect("QAOA pipeline");

    let mut table = Table::new(&["execution", "E[C]", "CR = E[C]/C_min", "optimal mass"]);
    table.row_owned(vec![
        "ideal".into(),
        fnum(ideal.c_exp, 3),
        fnum(ideal.cost_ratio, 3),
        fnum(ideal.optimal_mass, 3),
    ]);
    table.row_owned(vec![
        "noisy".into(),
        fnum(noisy.c_exp, 3),
        fnum(noisy.cost_ratio, 3),
        fnum(noisy.optimal_mass, 3),
    ]);
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\n|C_min| = {}; noise destroys {}% of the achievable expectation",
        fnum(runner.c_min().abs(), 1),
        fnum(
            100.0 * (1.0 - noisy.cost_ratio / ideal.cost_ratio.max(1e-9)),
            1
        ),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2b_quick_renders() {
        let r = fig2b(true);
        assert!(r.contains("111"));
        assert!(r.contains("noisy PST"));
    }
}

//! Figure 8: HAMMER's headline result on Bernstein–Vazirani — PST and
//! IST improvements across the whole IBM suite.

use std::fmt::Write as _;

use hammer_core::Hammer;
use hammer_dist::{metrics, stats, BitString};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::{ibm_bv_suite, IbmBackend};
use crate::pipeline::{run_bv, Engine};
use crate::report::{fnum, section, Table};

/// Fig. 8(a): one BV-10 circuit (key `1010101010`) before/after HAMMER.
#[must_use]
pub fn fig8a(quick: bool) -> String {
    let mut out = section(
        "fig8a",
        "BV-10 with key 1010101010: ideal / baseline / HAMMER",
        "baseline: key at ~8% masked by an incorrect outcome at ~20% \
         (IST 0.4); HAMMER boosts PST and pushes IST above 1",
    );
    let key = BitString::parse("1010101010").expect("valid key");
    let bench = hammer_circuits::BernsteinVazirani::new(key);
    let device = IbmBackend::Paris.device(bench.num_qubits());
    let trials = if quick { 8192 } else { 32768 };
    let mut rng = StdRng::seed_from_u64(0x01680A);
    let baseline =
        run_bv(&bench, &device, Engine::Propagation, trials, &mut rng).expect("BV pipeline");
    let hammered = Hammer::new().reconstruct(&baseline);

    let mut table = Table::new(&["distribution", "P(key)", "P(top incorrect)", "PST", "IST"]);
    let top_incorrect = |d: &hammer_dist::Distribution| {
        d.top_k(4)
            .into_iter()
            .find(|&(x, _)| x != key)
            .map_or(0.0, |(_, p)| p)
    };
    table.row_owned(vec![
        "ideal".into(),
        "1.0000".into(),
        "0.0000".into(),
        "1.000".into(),
        "inf".into(),
    ]);
    for (name, d) in [("baseline", &baseline), ("HAMMER", &hammered)] {
        table.row_owned(vec![
            name.into(),
            fnum(d.prob(key), 4),
            fnum(top_incorrect(d), 4),
            fnum(metrics::pst(d, &[key]), 4),
            fnum(metrics::ist(d, &[key]), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nPST improvement {}x, IST improvement {}x",
        fnum(
            metrics::pst(&hammered, &[key]) / metrics::pst(&baseline, &[key]),
            2
        ),
        fnum(
            metrics::ist(&hammered, &[key]) / metrics::ist(&baseline, &[key]),
            2
        ),
    );
    out
}

/// Fig. 8(b): relative PST/IST improvement for the full BV suite fanned
/// out over the three IBM backends.
#[must_use]
pub fn fig8b(quick: bool) -> String {
    let mut out = section(
        "fig8b",
        "Relative PST and IST improvement with HAMMER, 250+ BV circuits",
        "gmean PST 1.38x (up to 2x), gmean IST 1.74x (up to 5x); improvement \
         on essentially every circuit",
    );
    let suite = ibm_bv_suite(quick);
    let trials = if quick { 2048 } else { 8192 };
    let backends: &[IbmBackend] = if quick {
        &[IbmBackend::Paris]
    } else {
        &IbmBackend::ALL
    };

    let hammer = Hammer::new();
    let mut pst_gains = Vec::new();
    let mut ist_gains = Vec::new();
    let mut regressions = 0usize;
    for inst in &suite {
        for &backend in backends {
            let device = backend.device(inst.bench.num_qubits());
            let mut rng =
                StdRng::seed_from_u64(0x01680B ^ (inst.bench.key().as_u64() << 8) ^ backend as u64);
            let baseline = run_bv(&inst.bench, &device, Engine::Propagation, trials, &mut rng)
                .expect("BV pipeline");
            let after = hammer.reconstruct(&baseline);
            let key = [inst.bench.key()];
            let pst_gain = metrics::pst(&after, &key) / metrics::pst(&baseline, &key).max(1e-12);
            pst_gains.push(pst_gain);
            if pst_gain < 1.0 {
                regressions += 1;
            }
            let ist_before = metrics::ist(&baseline, &key);
            let ist_after = metrics::ist(&after, &key);
            if ist_before.is_finite() && ist_after.is_finite() && ist_before > 0.0 {
                ist_gains.push(ist_after / ist_before);
            }
        }
    }

    // The S-curve, decimated for readability.
    let mut sorted = pst_gains.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite gains"));
    let mut table = Table::new(&["percentile", "PST improvement"]);
    for pct in [0usize, 10, 25, 50, 75, 90, 100] {
        let idx = ((pct * (sorted.len() - 1)) as f64 / 100.0).round() as usize;
        table.row_owned(vec![format!("p{pct}"), fnum(sorted[idx], 3)]);
    }
    let _ = write!(out, "{table}");

    let _ = writeln!(
        out,
        "\ncircuits evaluated: {} ({} suite instances x {} backends)",
        pst_gains.len(),
        suite.len(),
        backends.len()
    );
    let _ = writeln!(
        out,
        "gmean PST improvement: {}x (max {}x), regressions: {}",
        fnum(stats::geometric_mean(&pst_gains).expect("non-empty"), 3),
        fnum(sorted.last().copied().expect("non-empty"), 2),
        regressions,
    );
    if !ist_gains.is_empty() {
        let mut ist_sorted = ist_gains.clone();
        ist_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite gains"));
        let _ = writeln!(
            out,
            "gmean IST improvement: {}x (max {}x) over {} circuits with finite IST",
            fnum(stats::geometric_mean(&ist_gains).expect("non-empty"), 3),
            fnum(ist_sorted.last().copied().expect("non-empty"), 2),
            ist_gains.len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8a_quick_improves_ist() {
        let r = super::fig8a(true);
        assert!(r.contains("IST improvement"));
    }
}

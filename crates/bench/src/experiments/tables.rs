//! Tables 1–3: dataset inventories and HAMMER's complexity/runtime.

use std::fmt::Write as _;
use std::time::Instant;

use hammer_core::{operation_count, Hammer};
use hammer_dist::{BitString, Distribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets;
use crate::report::{fnum, section, Table};

/// Table 1: the Google dataset inventory.
#[must_use]
pub fn table1() -> String {
    let mut out = section(
        "table1",
        "Benchmarks from the (synthetic) Google dataset",
        "QAOA Maxcut on grid (6-20 nodes, p=1-5, 120 circuits) and 3-regular \
         graphs (4-16 nodes, p=1-3, 200 circuits); figure of merit CR",
    );
    let grid = datasets::google_grid_suite(false);
    let reg = datasets::google_3reg_suite(false);
    let mut table = Table::new(&[
        "name",
        "algorithm details",
        "#qubits",
        "p layers",
        "total circuits",
        "figure of merit",
    ]);
    let span = |v: &[datasets::QaoaInstance]| {
        let ns: Vec<usize> = v.iter().map(datasets::QaoaInstance::n).collect();
        let ps: Vec<usize> = v.iter().map(|i| i.p).collect();
        (
            format!("{}-{}", ns.iter().min().unwrap(), ns.iter().max().unwrap()),
            format!(
                "{} to {}",
                ps.iter().min().unwrap(),
                ps.iter().max().unwrap()
            ),
        )
    };
    let (gn, gp) = span(&grid);
    table.row_owned(vec![
        "QAOA".into(),
        "Maxcut on Grid".into(),
        gn,
        gp,
        grid.len().to_string(),
        "CR".into(),
    ]);
    let (rn, rp) = span(&reg);
    table.row_owned(vec![
        "QAOA".into(),
        "Maxcut on 3-Reg Graphs".into(),
        rn,
        rp,
        reg.len().to_string(),
        "CR".into(),
    ]);
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\ntrials per circuit: {}",
        datasets::trials(true, false)
    );
    out
}

/// Table 2: the IBM benchmark inventory.
#[must_use]
pub fn table2() -> String {
    let mut out = section(
        "table2",
        "NISQ benchmarks on the (synthetic) IBM machines",
        "BV 5-15 qubits (88 circuits, PST/IST), QAOA 3-regular and random \
         graphs 5-20 qubits at p in {2,4} (70 circuits each, CR)",
    );
    let bv = datasets::ibm_bv_suite(false);
    let reg = datasets::ibm_qaoa_3reg_suite(false);
    let rand = datasets::ibm_qaoa_rand_suite(false);

    let mut table = Table::new(&[
        "name",
        "algorithm details",
        "#qubits",
        "p layers",
        "total circuits",
        "figure of merit",
    ]);
    let widths: Vec<usize> = bv.iter().map(|i| i.bench.num_data_qubits()).collect();
    table.row_owned(vec![
        "BV".into(),
        "Bernstein-Vazirani".into(),
        format!(
            "{}-{}",
            widths.iter().min().unwrap(),
            widths.iter().max().unwrap()
        ),
        "-".into(),
        bv.len().to_string(),
        "IST, PST".into(),
    ]);
    let span = |v: &[datasets::QaoaInstance]| {
        let ns: Vec<usize> = v.iter().map(datasets::QaoaInstance::n).collect();
        format!("{}-{}", ns.iter().min().unwrap(), ns.iter().max().unwrap())
    };
    table.row_owned(vec![
        "QAOA".into(),
        "Maxcut on 3-Reg Graphs".into(),
        span(&reg),
        "2 and 4".into(),
        reg.len().to_string(),
        "CR, PF".into(),
    ]);
    table.row_owned(vec![
        "QAOA".into(),
        "Maxcut Rand Graphs".into(),
        span(&rand),
        "2 and 4".into(),
        rand.len().to_string(),
        "CR, PF".into(),
    ]);
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nbackends: ibm-paris / ibm-manhattan / ibm-casablanca (heavy-hex, QV32-class); \
         trials per circuit: {}",
        datasets::trials(false, false)
    );
    out
}

/// A synthetic noisy distribution with exactly `unique` outcomes over
/// `n_bits`-bit strings (what a `trials`-shot job with that many unique
/// outcomes looks like to HAMMER).
fn synthetic_distribution(unique: usize, n_bits: usize, rng: &mut StdRng) -> Distribution {
    let mut keys = std::collections::HashSet::with_capacity(unique);
    let mask = if n_bits == 64 {
        u64::MAX
    } else {
        (1u64 << n_bits) - 1
    };
    while keys.len() < unique {
        keys.insert(rng.gen::<u64>() & mask);
    }
    let pairs = keys
        .into_iter()
        .map(|k| (BitString::new(k, n_bits), rng.gen::<f64>() + 1e-6));
    Distribution::from_probs(n_bits, pairs).expect("valid distribution")
}

/// Table 3: operation counts and measured single-run times of HAMMER.
#[must_use]
pub fn table3(quick: bool) -> String {
    let mut out = section(
        "table3",
        "HAMMER complexity: operations and measured runtime vs unique outcomes",
        "O(N^2) ops, O(n) memory; 64 G-ops at 256K unique outcomes; \
         independent of qubit count (paper reports identical counts for \
         n = 100 and n = 500)",
    );
    // The paper's rows: trials x unique-fraction.
    let rows: &[(u64, f64)] = if quick {
        &[(32_768, 0.1), (32_768, 1.0)]
    } else {
        &[(32_768, 0.1), (32_768, 1.0), (262_144, 0.1), (262_144, 1.0)]
    };
    // Our bitstrings cap at 64 bits; the op count is width-independent
    // (one XOR+POPCNT per pair regardless of n), which is exactly the
    // paper's point about n = 100 vs n = 500.
    let n_bits = 64;
    // The blocked/branchless/work-stealing kernel makes every row —
    // including the 256K-unique one the paper only extrapolates —
    // cheap enough to measure outright.
    let hammer = Hammer::new();
    let threads = hammer.threads();
    let mut table = Table::new(&[
        "trials",
        "unique outcomes",
        "ops (billions)",
        "time (s)",
        "throughput (Mpairs/s)",
    ]);
    let mut rng = StdRng::seed_from_u64(0x7AB3);
    for &(trials, frac) in rows {
        let unique = (trials as f64 * frac) as usize;
        let pairs = (unique as f64) * (unique as f64) * 2.0;
        let dist = synthetic_distribution(unique, n_bits, &mut rng);
        let start = Instant::now();
        let _ = hammer.reconstruct(&dist);
        let secs = start.elapsed().as_secs_f64();
        table.row_owned(vec![
            trials.to_string(),
            format!("{unique} ({:.0}%)", frac * 100.0),
            fnum(operation_count(unique as u64) as f64 / 1e9, 3),
            fnum(secs, 3),
            fnum(pairs / secs / 1e6, 1),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nevery row measured (blocked kernel, {threads} workers); memory: two \
         O(n/2) vectors (CHS + weights) -> well under 1 MB even at 500 qubits; \
         see also `repro bench-kernel` and `cargo bench` target hammer_scaling"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_inventories() {
        let t1 = table1();
        assert!(t1.contains("120"));
        assert!(t1.contains("200"));
        let t2 = table2();
        assert!(t2.contains("88"));
        assert!(t2.contains("70"));
    }

    #[test]
    fn synthetic_distribution_has_exact_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = synthetic_distribution(500, 64, &mut rng);
        assert_eq!(d.len(), 500);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table3_quick_measures() {
        let t = table3(true);
        assert!(t.contains("throughput"));
    }
}

//! Figure 11: does entanglement destroy the Hamming structure?
//! EHD vs entanglement entropy and vs fidelity for random-identity
//! circuits of two depth classes.

use std::fmt::Write as _;

use hammer_circuits::RandomIdentityBuilder;
use hammer_dist::{metrics, stats};
use hammer_sim::{entanglement_entropy, NoiseEngine, PropagationEngine, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::IbmBackend;
use crate::report::{fnum, section, Table};

struct Sample {
    entropy: f64,
    ehd: f64,
    fidelity: f64,
    depth: usize,
}

fn run_class(
    label: &str,
    layer_range: (usize, usize),
    circuits: usize,
    trials: u64,
    out: &mut String,
) {
    let n = 10;
    let base = IbmBackend::Paris.device(n);
    let mut samples: Vec<Sample> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x016B ^ layer_range.0 as u64);
    for _ in 0..circuits {
        let layers = rng.gen_range(layer_range.0..=layer_range.1);
        let density = rng.gen_range(0.1..1.0);
        let bench = RandomIdentityBuilder::new(n)
            .layers(layers)
            .two_qubit_density(density)
            .build(&mut rng);
        let entropy =
            entanglement_entropy(&StateVector::from_circuit(bench.entangling_half()), n / 2);
        // Per-circuit calibration drift: the paper's data spans twenty
        // days of calibration cycles, so realized error rates vary
        // circuit to circuit. Without this, EHD would be a pure
        // function of gate count and the entropy correlation would be
        // artificially strong.
        let drift = rng.gen_range(0.4..2.5);
        let device = base.with_noise(hammer_sim::NoiseModel::uniform(
            n,
            base.noise().p1() * drift,
            base.noise().p2() * drift,
            hammer_sim::ReadoutError::new((0.018 * drift).min(0.5), (0.042 * drift).min(0.5)),
        ));
        let engine = PropagationEngine::new(&device);
        let dist = engine
            .noisy_distribution(bench.circuit(), trials, &mut rng)
            .expect("random-identity pipeline");
        let correct = [bench.correct_outcome()];
        samples.push(Sample {
            entropy,
            ehd: metrics::ehd(&dist, &correct),
            fidelity: metrics::pst(&dist, &correct),
            depth: bench.circuit().depth(),
        });
    }

    let entropies: Vec<f64> = samples.iter().map(|s| s.entropy).collect();
    let ehds: Vec<f64> = samples.iter().map(|s| s.ehd).collect();
    let fidelities: Vec<f64> = samples.iter().map(|s| s.fidelity).collect();
    let depths: Vec<f64> = samples.iter().map(|s| s.depth as f64).collect();

    let _ = writeln!(
        out,
        "\n[{label}] {} circuits, depth {}-{}, n = {n}",
        samples.len(),
        samples.iter().map(|s| s.depth).min().expect("non-empty"),
        samples.iter().map(|s| s.depth).max().expect("non-empty"),
    );
    let mut table = Table::new(&["pair", "spearman"]);
    let rho =
        |xs: &[f64], ys: &[f64]| stats::spearman(xs, ys).map_or("n/a".to_string(), |r| fnum(r, 3));
    table.row_owned(vec!["entropy vs EHD".into(), rho(&entropies, &ehds)]);
    table.row_owned(vec!["fidelity vs EHD".into(), rho(&fidelities, &ehds)]);
    table.row_owned(vec!["depth vs EHD".into(), rho(&depths, &ehds)]);
    let _ = write!(out, "{table}");

    // Binned view: EHD across entropy terciles.
    let mut by_entropy: Vec<&Sample> = samples.iter().collect();
    by_entropy.sort_by(|a, b| a.entropy.partial_cmp(&b.entropy).expect("finite"));
    let tercile = by_entropy.len() / 3;
    let mut table = Table::new(&[
        "entropy tercile",
        "mean entropy",
        "mean EHD",
        "mean fidelity",
    ]);
    for (name, chunk) in [
        ("low", &by_entropy[..tercile]),
        ("mid", &by_entropy[tercile..2 * tercile]),
        ("high", &by_entropy[2 * tercile..]),
    ] {
        let m =
            |f: fn(&Sample) -> f64| chunk.iter().map(|s| f(s)).sum::<f64>() / chunk.len() as f64;
        table.row_owned(vec![
            name.into(),
            fnum(m(|s| s.entropy), 3),
            fnum(m(|s| s.ehd), 3),
            fnum(m(|s| s.fidelity), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "max EHD observed: {} (uniform-error model: {})",
        fnum(ehds.iter().copied().fold(f64::NEG_INFINITY, f64::max), 3),
        fnum(metrics::uniform_ehd(n), 1),
    );
}

/// Fig. 11(a–d): EHD vs entanglement entropy (weak correlation) and vs
/// fidelity (strong correlation) for high- and low-depth circuits.
#[must_use]
pub fn fig11(quick: bool) -> String {
    let mut out = section(
        "fig11",
        "EHD vs entanglement entropy and fidelity (random-identity circuits)",
        "entropy vs EHD correlates weakly (Spearman ~0.2, weaker for shallow \
         circuits); fidelity vs EHD correlates strongly and negatively; EHD \
         stays below the uniform n/2 line",
    );
    let (circuits, trials) = if quick { (24, 2048) } else { (150, 8192) };
    run_class("high depth", (5, 9), circuits, trials, &mut out);
    run_class("low depth", (1, 4), circuits, trials, &mut out);
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11_quick_renders() {
        let r = super::fig11(true);
        assert!(r.contains("entropy vs EHD"));
        assert!(r.contains("high depth"));
        assert!(r.contains("low depth"));
    }
}

//! Figure 9: Cost-Ratio S-curves and quality curves on the Google-style
//! QAOA dataset.

use std::fmt::Write as _;

use hammer_core::HammerConfig;
use hammer_dist::stats;
use hammer_graphs::MaxCut;
use hammer_qaoa::{expectation, PostProcess, QaoaRunner};
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{google_3reg_suite, google_grid_suite, trials, GraphFamily, QaoaInstance};
use crate::report::{fnum, section, Table};

/// Baseline for the Google dataset: readout mitigation only (as in the
/// paper); HAMMER applies on top of it.
fn google_post() -> (PostProcess, PostProcess) {
    (
        PostProcess::ReadoutMitigation,
        PostProcess::MitigationThenHammer(HammerConfig::paper()),
    )
}

/// Runs one instance under both post-processing regimes (sharing one
/// simulated job), returning `(baseline CR, HAMMER CR)`.
fn run_instance(inst: &QaoaInstance, shots: u64, seed: u64) -> (f64, f64, QaoaRunner) {
    let runner = QaoaRunner::new(
        MaxCut::new(inst.graph.clone()),
        DeviceModel::google_sycamore(inst.n()),
    )
    .trials(shots);
    let params = angles::tuned(inst.family, inst.p);
    let (base_post, hammer_post) = google_post();
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes = runner
        .run_multi(&params, &[base_post, hammer_post], &mut rng)
        .expect("QAOA pipeline");
    (outcomes[0].cost_ratio, outcomes[1].cost_ratio, runner)
}

/// The shared S-curve report for figs. 9(a) and 9(c).
fn s_curve(
    id: &str,
    title: &str,
    expectation_note: &str,
    suite: &[QaoaInstance],
    quick: bool,
) -> String {
    let mut out = section(id, title, expectation_note);
    let shots = trials(true, quick);
    let mut rows: Vec<(String, usize, usize, f64, f64)> = Vec::new();
    for (i, inst) in suite.iter().enumerate() {
        let (base, ham, _) = run_instance(inst, shots, 0x0169 ^ i as u64);
        rows.push((inst.id.clone(), inst.n(), inst.p, base, ham));
    }
    // S-curve order: ascending baseline CR.
    rows.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("finite CRs"));

    let mut table = Table::new(&["instance", "n", "p", "baseline CR", "HAMMER CR", "gain"]);
    let step = (rows.len() / 20).max(1);
    for (i, (id, n, p, base, ham)) in rows.iter().enumerate() {
        if i % step == 0 || i + 1 == rows.len() {
            table.row_owned(vec![
                id.clone(),
                n.to_string(),
                p.to_string(),
                fnum(*base, 3),
                fnum(*ham, 3),
                fnum(ham / base.max(1e-9), 2),
            ]);
        }
    }
    let _ = write!(out, "{table}");

    let wins = rows.iter().filter(|r| r.4 > r.3).count();
    let gains: Vec<f64> = rows
        .iter()
        .filter(|r| r.3 > 0.0 && r.4 > 0.0)
        .map(|r| r.4 / r.3)
        .collect();
    let _ = writeln!(
        out,
        "\nHAMMER improves CR on {}/{} instances; gmean gain {}x, max gain {}x",
        wins,
        rows.len(),
        fnum(stats::geometric_mean(&gains).unwrap_or(1.0), 3),
        fnum(gains.iter().copied().fold(f64::NEG_INFINITY, f64::max), 2),
    );
    out
}

/// Fig. 9(a): CR S-curve for the 3-regular Google suite.
#[must_use]
pub fn fig9a(quick: bool) -> String {
    s_curve(
        "fig9a",
        "Cost Ratio S-curve, 3-regular graphs (Sycamore-like)",
        "noise drops CR to 0.08-0.4; HAMMER boosts every instance, up to 2.4x",
        &google_3reg_suite(quick),
        quick,
    )
}

/// Fig. 9(c): CR S-curve for the grid Google suite.
#[must_use]
pub fn fig9c(quick: bool) -> String {
    s_curve(
        "fig9c",
        "Cost Ratio S-curve, grid graphs (Sycamore-like)",
        "grid circuits route SWAP-free, so baseline CR is higher than \
         3-regular; HAMMER still improves every instance",
        &google_grid_suite(quick),
        quick,
    )
}

/// The shared quality-curve report for figs. 9(b) and 9(d).
fn quality_curve_report(
    id: &str,
    title: &str,
    expectation_note: &str,
    inst: &QaoaInstance,
    quick: bool,
) -> String {
    let mut out = section(id, title, expectation_note);
    let shots = trials(true, quick);
    let runner = QaoaRunner::new(
        MaxCut::new(inst.graph.clone()),
        DeviceModel::google_sycamore(inst.n()),
    )
    .trials(shots);
    let params = angles::tuned(inst.family, inst.p);
    let (base_post, hammer_post) = google_post();
    let mut rng = StdRng::seed_from_u64(0x0169B);
    let mut outcomes = runner
        .run_multi(&params, &[base_post, hammer_post], &mut rng)
        .expect("QAOA pipeline");
    let hammered = outcomes.pop().expect("two outcomes");
    let baseline = outcomes.pop().expect("two outcomes");

    let problem = runner.problem();
    let c_min = runner.c_min();
    let base_curve = expectation::quality_curve(&baseline.distribution, problem, c_min);
    let ham_curve = expectation::quality_curve(&hammered.distribution, problem, c_min);

    let mut table = Table::new(&[
        "C_sol/C_min >=",
        "baseline cumulative P",
        "HAMMER cumulative P",
    ]);
    for threshold in [1.0, 0.8, 0.6, 0.4, 0.2, 0.0, -0.5] {
        let cum = |curve: &[expectation::QualityPoint]| {
            curve
                .iter()
                .take_while(|pt| pt.ratio >= threshold - 1e-9)
                .last()
                .map_or(0.0, |pt| pt.cumulative_probability)
        };
        table.row_owned(vec![
            fnum(threshold, 1),
            fnum(cum(&base_curve), 4),
            fnum(cum(&ham_curve), 4),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\noptimal-cut mass: baseline {} -> HAMMER {}; CR {} -> {}",
        fnum(baseline.optimal_mass, 4),
        fnum(hammered.optimal_mass, 4),
        fnum(baseline.cost_ratio, 3),
        fnum(hammered.cost_ratio, 3),
    );
    out
}

/// Fig. 9(b): quality curve of a QAOA-10 3-regular instance.
#[must_use]
pub fn fig9b(quick: bool) -> String {
    let inst = QaoaInstance::with_seed(GraphFamily::ThreeRegular, 10, 2, 0);
    quality_curve_report(
        "fig9b",
        "Cumulative solution quality, QAOA-10 on a 3-regular graph",
        "HAMMER raises optimal-cut mass (paper: 12% -> 19.5%) and drains \
         sub-optimal mass",
        &inst,
        quick,
    )
}

/// Fig. 9(d): quality curve of a QAOA-12 grid instance.
#[must_use]
pub fn fig9d(quick: bool) -> String {
    let inst = QaoaInstance::with_seed(GraphFamily::Grid, 12, 2, 0);
    quality_curve_report(
        "fig9d",
        "Cumulative solution quality, QAOA-12 on a grid graph",
        "same shift toward optimal cuts on the shallower grid family",
        &inst,
        quick,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9b_quick_renders() {
        let r = fig9b(true);
        assert!(r.contains("optimal-cut mass"));
    }
}

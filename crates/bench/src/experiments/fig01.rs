//! Figure 1: the motivating observations — (a) a noisy BV histogram,
//! (b) EHD growth far below the uniform-error model, (c) the flattened
//! variational cost landscape.

use std::fmt::Write as _;

use hammer_circuits::BernsteinVazirani;
use hammer_dist::{metrics, BitString};
use hammer_qaoa::{Landscape, PostProcess, QaoaRunner};
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{GraphFamily, IbmBackend, QaoaInstance};
use crate::pipeline::{run_bv, Engine};
use crate::report::{bar, fnum, section, Table};

/// Fig. 1(a): output histogram of a 4-qubit BV circuit.
#[must_use]
pub fn fig1a(quick: bool) -> String {
    let mut out = section(
        "fig1a",
        "Output histogram of a 4-qubit Bernstein-Vazirani circuit",
        "error-free output '1111' far from certain; most frequent incorrect \
         outcomes are close to it in Hamming space",
    );
    let key = BitString::ones(4);
    let bench = BernsteinVazirani::new(key);
    let device = DeviceModel::ibm_manhattan(bench.num_qubits());
    let trials = if quick { 2048 } else { 8192 };
    let mut rng = StdRng::seed_from_u64(0x01610A);
    let dist =
        run_bv(&bench, &device, Engine::Trajectory, trials, &mut rng).expect("BV-4 pipeline");

    let mut table = Table::new(&["outcome", "hd(key)", "probability", "histogram"]);
    let mut rows: Vec<(BitString, f64)> = dist.iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probs"));
    let p_max = rows.first().map_or(1.0, |r| r.1);
    for (x, p) in rows.iter().take(12) {
        table.row_owned(vec![
            format!("{x}{}", if *x == key { " <= correct" } else { "" }),
            x.hamming_distance(key).to_string(),
            fnum(*p, 4),
            bar(*p, p_max, 30),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nPST(correct) = {}, EHD = {} (uniform-error model: {})",
        fnum(metrics::pst(&dist, &[key]), 3),
        fnum(metrics::ehd(&dist, &[key]), 3),
        fnum(metrics::uniform_ehd(4), 1),
    );
    out
}

/// Fig. 1(b): EHD of QAOA (p = 2) output vs circuit width, against the
/// uniform-error `n/2` line.
#[must_use]
pub fn fig1b(quick: bool) -> String {
    let mut out = section(
        "fig1b",
        "Expected Hamming Distance vs qubits, QAOA p=2 (IBM-Paris-like)",
        "EHD grows with n but much slower than the uniform-error n/2 line",
    );
    let sizes: Vec<usize> = if quick {
        vec![6, 8, 10, 12]
    } else {
        (6..=20).step_by(2).collect()
    };
    let trials = if quick { 2048 } else { 8192 };
    let params = angles::tuned(GraphFamily::ThreeRegular, 2);

    let mut table = Table::new(&["n", "ehd", "uniform n/2", "ratio"]);
    for &n in &sizes {
        let inst = QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, 2, 0);
        let runner = QaoaRunner::new(
            hammer_graphs::MaxCut::new(inst.graph.clone()),
            IbmBackend::Paris.device(n),
        )
        .trials(trials);
        let mut rng = StdRng::seed_from_u64(0x01610B ^ n as u64);
        let outcome = runner
            .run_with(&params, &PostProcess::Baseline, &mut rng)
            .expect("QAOA pipeline");
        let e = metrics::ehd(&outcome.distribution, runner.optimal_cuts());
        table.row_owned(vec![
            n.to_string(),
            fnum(e, 3),
            fnum(metrics::uniform_ehd(n), 1),
            fnum(e / metrics::uniform_ehd(n), 3),
        ]);
    }
    let _ = write!(out, "{table}");
    out.push_str("\nEHD stays well below n/2 at every size: errors are structured.\n");
    out
}

/// Fig. 1(c): the (β, γ) cost landscape of a variational circuit,
/// flattened by noise.
#[must_use]
pub fn fig1c(quick: bool) -> String {
    let mut out = section(
        "fig1c",
        "Cost landscape of a variational circuit (noisy vs ideal)",
        "noise compresses the landscape's dynamic range, flattening gradients",
    );
    let n = if quick { 6 } else { 8 };
    let res = if quick { 6 } else { 10 };
    let inst = QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, 1, 0);
    let problem = hammer_graphs::MaxCut::new(inst.graph.clone());
    let c_min = problem.brute_force().c_min;
    let runner = QaoaRunner::new(problem.clone(), IbmBackend::Paris.device(n)).trials(2048);

    // Offset range: a lattice of exact multiples of pi/4 would sit on
    // the analytic zeros of the p=1 expectation for regular graphs.
    let lo = 0.07;
    let hi = std::f64::consts::PI - 0.03;
    let ideal = Landscape::scan((lo, hi), (lo, hi), (res, res), |g, b| {
        runner
            .ideal(&hammer_qaoa::QaoaParams::constant(1, g, b))
            .cost_ratio
    });
    let mut rng = StdRng::seed_from_u64(0x01610C);
    let noisy = Landscape::scan((lo, hi), (lo, hi), (res, res), |g, b| {
        runner
            .run(&hammer_qaoa::QaoaParams::constant(1, g, b), &mut rng)
            .expect("QAOA pipeline")
            .cost_ratio
    });

    let (ilo, ihi) = ideal.range();
    let (nlo, nhi) = noisy.range();
    let _ = writeln!(
        out,
        "instance: 3-regular n={n}, p=1, C_min = {c_min}; grid {res}x{res} over (gamma, beta)"
    );
    let mut table = Table::new(&[
        "landscape",
        "CR min",
        "CR max",
        "dynamic range",
        "mean |grad|",
    ]);
    table.row_owned(vec![
        "ideal".into(),
        fnum(ilo, 3),
        fnum(ihi, 3),
        fnum(ihi - ilo, 3),
        fnum(ideal.mean_gradient_magnitude(), 3),
    ]);
    table.row_owned(vec![
        "noisy".into(),
        fnum(nlo, 3),
        fnum(nhi, 3),
        fnum(nhi - nlo, 3),
        fnum(noisy.mean_gradient_magnitude(), 3),
    ]);
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\nnoise compresses the dynamic range by {}x",
        fnum((ihi - ilo) / (nhi - nlo).max(1e-9), 2)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_reports_structure() {
        let r = fig1a(true);
        assert!(r.contains("correct"));
        assert!(r.contains("PST"));
    }

    #[test]
    fn fig1c_quick_renders() {
        let r = fig1c(true);
        assert!(r.contains("dynamic range"));
    }
}

//! Figure 5: how fast the MaxCut cost degrades with Hamming distance
//! from the desired cuts.

use std::fmt::Write as _;

use hammer_graphs::MaxCut;
use hammer_qaoa::expectation::costs_at_distance;

use crate::datasets::{GraphFamily, QaoaInstance};
use crate::report::{fnum, section, Table};

/// Fig. 5: cost staircases at Hamming distance 1 and 2 from the desired
/// cuts of a 10-node MaxCut instance.
#[must_use]
pub fn fig5(quick: bool) -> String {
    let mut out = section(
        "fig5",
        "Cost of all cuts at Hamming distance 1 / 2 from the desired cuts (QAOA-10)",
        "one flip costs ~2x the optimum's margin, two flips up to ~10x: even \
         Hamming-close outcomes wreck the expectation",
    );
    let n = if quick { 8 } else { 10 };
    let inst = QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, 1, 2);
    let problem = MaxCut::new(inst.graph.clone());
    let optimum = problem.brute_force();
    let _ = writeln!(
        out,
        "instance {}: C_min = {}, {} optimal cut(s)",
        inst.id,
        optimum.c_min,
        optimum.optimal.len()
    );

    let mut table = Table::new(&[
        "distance",
        "strings",
        "best cost",
        "mean cost",
        "worst cost",
        "mean degradation",
    ]);
    let mut means = Vec::new();
    for d in 1..=2usize {
        let costs = costs_at_distance(&problem, &optimum.optimal, d);
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        means.push(mean);
        // Degradation: how much of the optimal margin is lost, in units
        // of |C_min| (1.0 = all of it).
        let degradation = (mean - optimum.c_min) / optimum.c_min.abs();
        table.row_owned(vec![
            d.to_string(),
            costs.len().to_string(),
            fnum(costs[0], 2),
            fnum(mean, 2),
            fnum(*costs.last().expect("non-empty"), 2),
            fnum(degradation, 2),
        ]);
    }
    let _ = write!(out, "{table}");

    // The staircase itself, abbreviated.
    for d in 1..=2usize {
        let costs = costs_at_distance(&problem, &optimum.optimal, d);
        let shown: Vec<String> = costs.iter().map(|c| fnum(*c, 1)).take(20).collect();
        let _ = writeln!(
            out,
            "\nd={d} staircase (sorted costs{}): {}",
            if costs.len() > 20 { ", first 20" } else { "" },
            shown.join(" ")
        );
    }
    let _ = writeln!(
        out,
        "\ntwo-flip mean degradation / one-flip mean degradation = {}",
        fnum((means[1] - optimum.c_min) / (means[0] - optimum.c_min), 2)
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_quick_renders() {
        let r = super::fig5(true);
        assert!(r.contains("staircase"));
        assert!(r.contains("C_min"));
    }
}

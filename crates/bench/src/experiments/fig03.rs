//! Figure 3: Hamming spectra — (a) the bucketing idea, (b) BV-8,
//! (c) QAOA-8 with multiple correct outcomes.

use std::fmt::Write as _;

use hammer_circuits::BernsteinVazirani;
use hammer_dist::{BitString, Distribution, HammingSpectrum};
use hammer_graphs::MaxCut;
use hammer_qaoa::QaoaRunner;
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{GraphFamily, IbmBackend, QaoaInstance};
use crate::pipeline::{run_bv, Engine};
use crate::report::{fnum, section, Table};

/// Renders a spectrum as the per-bin table the figure plots.
fn spectrum_table(spectrum: &HammingSpectrum) -> Table {
    let mut table = Table::new(&[
        "hamming bin",
        "outcomes",
        "total prob",
        "bin mean",
        "bin max",
        "uniform 1/2^n",
    ]);
    for (k, bin) in spectrum.bins().iter().enumerate() {
        if bin.count == 0 && k > 0 {
            continue;
        }
        table.row_owned(vec![
            k.to_string(),
            bin.count.to_string(),
            fnum(bin.total, 4),
            fnum(bin.mean(), 6),
            fnum(bin.max, 4),
            fnum(spectrum.uniform_outcome_probability(), 6),
        ]);
    }
    table
}

/// Fig. 3(a): the illustrative 2-qubit spectrum bucketing.
#[must_use]
pub fn fig3a() -> String {
    let mut out = section(
        "fig3a",
        "From output distribution to Hamming spectrum (2-qubit example)",
        "outcomes bucket into bins by Hamming distance from the correct answer",
    );
    let correct = BitString::parse("11").expect("valid");
    let dist = Distribution::from_probs(
        2,
        [
            (BitString::parse("11").expect("valid"), 0.60),
            (BitString::parse("01").expect("valid"), 0.20),
            (BitString::parse("10").expect("valid"), 0.12),
            (BitString::parse("00").expect("valid"), 0.08),
        ],
    )
    .expect("valid distribution");
    let mut table = Table::new(&["outcome", "probability", "bin (hd to 11)"]);
    for (x, p) in dist.iter() {
        table.row_owned(vec![
            x.to_string(),
            fnum(p, 2),
            x.hamming_distance(correct).to_string(),
        ]);
    }
    let _ = writeln!(out, "{table}");
    let spectrum = HammingSpectrum::new(&dist, &[correct]);
    let _ = write!(out, "{}", spectrum_table(&spectrum));
    out
}

/// Fig. 3(b): Hamming spectrum of a BV-8 output on IBM-Manhattan.
#[must_use]
pub fn fig3b(quick: bool) -> String {
    let mut out = section(
        "fig3b",
        "Hamming spectrum of BV-8 (key 11111111, IBM-Manhattan-like)",
        "high-probability incorrect outcomes concentrate in low bins; beyond \
         bin ~4 outcomes fall below the uniform 1/2^n chance line",
    );
    let key = BitString::ones(8);
    let bench = BernsteinVazirani::new(key);
    let device = DeviceModel::ibm_manhattan(bench.num_qubits());
    let trials = if quick { 4096 } else { 16384 };
    let mut rng = StdRng::seed_from_u64(0x01630B);
    let dist =
        run_bv(&bench, &device, Engine::Propagation, trials, &mut rng).expect("BV-8 pipeline");

    let spectrum = HammingSpectrum::new(&dist, &[key]);
    let _ = write!(out, "{}", spectrum_table(&spectrum));

    // Highlight the two marked outcomes of the figure.
    let (top, p_top) = dist.most_probable().expect("non-empty");
    let _ = writeln!(
        out,
        "\ncorrect key: p = {} (bin 0); most frequent outcome: {} with p = {} (bin {})",
        fnum(dist.prob(key), 4),
        top,
        fnum(p_top, 4),
        top.hamming_distance(key),
    );
    out
}

/// Fig. 3(c): Hamming spectrum of a QAOA-8 output with multiple correct
/// outcomes (shortest-distance binning).
#[must_use]
pub fn fig3c(quick: bool) -> String {
    let mut out = section(
        "fig3c",
        "Hamming spectrum of QAOA-8 (multiple correct outcomes)",
        "most incorrect outcomes within ~3 bins of the nearest correct answer",
    );
    // Pick a 3-regular instance with at least 3 optimal cuts, as in the
    // paper's example.
    let inst = (0..50)
        .map(|s| QaoaInstance::with_seed(GraphFamily::ThreeRegular, 8, 2, s))
        .find(|i| MaxCut::new(i.graph.clone()).brute_force().optimal.len() >= 3)
        .expect("an 8-node 3-regular instance with >= 3 optima exists");
    let problem = MaxCut::new(inst.graph.clone());
    let runner = QaoaRunner::new(problem, IbmBackend::Manhattan.device(8)).trials(if quick {
        4096
    } else {
        16384
    });
    let params = angles::tuned(GraphFamily::ThreeRegular, 2);
    let mut rng = StdRng::seed_from_u64(0x01630C);
    let outcome = runner.run(&params, &mut rng).expect("QAOA pipeline");

    let correct = runner.optimal_cuts();
    let _ = writeln!(
        out,
        "instance {} with {} optimal cuts",
        inst.id,
        correct.len()
    );
    let spectrum = HammingSpectrum::new(&outcome.distribution, correct);
    let _ = write!(out, "{}", spectrum_table(&spectrum));

    let within3: f64 = spectrum.bins().iter().take(4).map(|b| b.total).sum();
    let _ = writeln!(
        out,
        "\nprobability mass within 3 bins of a correct answer: {}",
        fnum(within3, 3)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_is_deterministic() {
        assert_eq!(fig3a(), fig3a());
    }

    #[test]
    fn fig3b_quick_renders() {
        let r = fig3b(true);
        assert!(r.contains("hamming bin"));
        assert!(r.contains("correct key"));
    }
}

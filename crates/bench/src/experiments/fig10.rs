//! Figure 10: reclaiming QAOA's algorithmic benefits — CR vs layer
//! count, and the sharpened optimization landscape.

use std::fmt::Write as _;

use hammer_core::HammerConfig;
use hammer_dist::stats;
use hammer_graphs::MaxCut;
use hammer_qaoa::{Landscape, PostProcess, QaoaParams, QaoaRunner};
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::angles;
use crate::datasets::{GraphFamily, QaoaInstance};
use crate::report::{fnum, section, Table};

/// Fig. 10(a): CR vs number of layers p for noiseless / baseline /
/// HAMMER on grid instances.
#[must_use]
pub fn fig10a(quick: bool) -> String {
    let mut out = section(
        "fig10a",
        "Quality of solution vs QAOA layers p (grid graphs)",
        "noiseless CR rises monotonically with p; the noisy baseline peaks \
         at small p and then degrades; HAMMER shifts the peak to higher p",
    );
    let (sizes, ps, shots): (Vec<usize>, Vec<usize>, u64) = if quick {
        (vec![6, 9], vec![1, 2, 3], 2048)
    } else {
        (vec![10, 12, 16, 20], vec![1, 2, 3, 4, 5], 8192)
    };

    let mut table = Table::new(&["p", "noiseless CR", "baseline CR", "HAMMER CR"]);
    let mut series: Vec<(f64, f64, f64)> = Vec::new();
    for &p in &ps {
        let params = angles::tuned(GraphFamily::Grid, p);
        let mut ideal = Vec::new();
        let mut base = Vec::new();
        let mut ham = Vec::new();
        for &n in &sizes {
            for seed in 0..2u64 {
                let inst = QaoaInstance::with_seed(GraphFamily::Grid, n, p, seed);
                let runner = QaoaRunner::new(
                    MaxCut::new(inst.graph.clone()),
                    DeviceModel::google_sycamore(n),
                )
                .trials(shots);
                ideal.push(runner.ideal(&params).cost_ratio);
                let mut rng = StdRng::seed_from_u64(0x016A ^ (n as u64) << 8 ^ p as u64 ^ seed);
                let outcomes = runner
                    .run_multi(
                        &params,
                        &[
                            PostProcess::ReadoutMitigation,
                            PostProcess::MitigationThenHammer(HammerConfig::paper()),
                        ],
                        &mut rng,
                    )
                    .expect("QAOA pipeline");
                base.push(outcomes[0].cost_ratio);
                ham.push(outcomes[1].cost_ratio);
            }
        }
        let m = |v: &[f64]| stats::mean(v).expect("non-empty");
        series.push((m(&ideal), m(&base), m(&ham)));
        table.row_owned(vec![
            p.to_string(),
            fnum(m(&ideal), 3),
            fnum(m(&base), 3),
            fnum(m(&ham), 3),
        ]);
    }
    let _ = write!(out, "{table}");

    let peak = |f: fn(&(f64, f64, f64)) -> f64, s: &[(f64, f64, f64)]| {
        s.iter()
            .enumerate()
            .max_by(|a, b| f(a.1).partial_cmp(&f(b.1)).expect("finite CRs"))
            .map(|(i, _)| ps[i])
            .expect("non-empty")
    };
    let _ = writeln!(
        out,
        "\npeak p: noiseless at p={}, baseline at p={}, HAMMER at p={}",
        peak(|s| s.0, &series),
        peak(|s| s.1, &series),
        peak(|s| s.2, &series),
    );
    out
}

/// Fig. 10(b): the (β, γ) optimization landscape of a QAOA instance,
/// baseline vs HAMMER.
#[must_use]
pub fn fig10b(quick: bool) -> String {
    let mut out = section(
        "fig10b",
        "Optimization landscape (gamma x beta), baseline vs HAMMER",
        "HAMMER raises the quality at every grid point and sharpens the \
         gradients toward the optimum",
    );
    let (n, res, shots) = if quick { (8, 5, 1024) } else { (14, 9, 4096) };
    let inst = QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, 1, 3);
    let runner = QaoaRunner::new(
        MaxCut::new(inst.graph.clone()),
        DeviceModel::google_sycamore(n),
    )
    .trials(shots);

    // Scan once, post-process each grid point two ways from the same
    // simulated job. Offset the lattice away from the analytic zeros.
    let lo = 0.07;
    let hi = std::f64::consts::PI - 0.03;
    let mut rng = StdRng::seed_from_u64(0x016AB);
    let mut base_values = Vec::new();
    let hammered = Landscape::scan((lo, hi), (lo, hi), (res, res), |g, b| {
        let outcomes = runner
            .run_multi(
                &QaoaParams::constant(1, g, b),
                &[
                    PostProcess::ReadoutMitigation,
                    PostProcess::MitigationThenHammer(HammerConfig::paper()),
                ],
                &mut rng,
            )
            .expect("QAOA pipeline");
        base_values.push(outcomes[0].cost_ratio);
        outcomes[1].cost_ratio
    });
    let baseline = Landscape {
        gammas: hammered.gammas.clone(),
        betas: hammered.betas.clone(),
        values: base_values.chunks(res).map(<[f64]>::to_vec).collect(),
    };

    let mut table = Table::new(&[
        "landscape",
        "CR min",
        "CR max",
        "mean |grad|",
        "best (gamma, beta)",
    ]);
    for (name, l) in [("baseline", &baseline), ("HAMMER", &hammered)] {
        let (lo, hi) = l.range();
        // `minimum()` finds the lowest CR; we want the best (highest),
        // so scan manually.
        let mut best = (0.0, 0.0, f64::NEG_INFINITY);
        for (i, row) in l.values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v > best.2 {
                    best = (l.gammas[i], l.betas[j], v);
                }
            }
        }
        table.row_owned(vec![
            name.into(),
            fnum(lo, 3),
            fnum(hi, 3),
            fnum(l.mean_gradient_magnitude(), 3),
            format!("({}, {})", fnum(best.0, 2), fnum(best.1, 2)),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "\ngradient sharpening: {}x",
        fnum(
            hammered.mean_gradient_magnitude() / baseline.mean_gradient_magnitude().max(1e-9),
            2
        ),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10b_quick_renders() {
        let r = super::fig10b(true);
        assert!(r.contains("gradient sharpening"));
    }
}

//! The `repro bench-kernel` measurement harness: sweeps the `O(N²)`
//! scoring kernel over support sizes and emits the `BENCH_kernel.json`
//! trajectory artifact.
//!
//! Table 3 of the paper extrapolates its 256K-unique row; this harness
//! exists to make that row a *measured* number, with a recorded speedup
//! of the blocked/branchless/work-stealing kernel over the PR 1 scalar
//! kernel at the same thread count.

use std::time::Instant;

use hammer_core::kernel::{self, reference};
use hammer_core::{FilterRule, Hammer, KernelTuning};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Width of the synthetic outcomes. 64 bits puts the `d < n/2` cutoff
/// exactly at the mode of the pair-distance distribution — the
/// worst case for the reference kernel's cutoff branch and therefore
/// the honest setting for the comparison.
const N_BITS: usize = 64;

/// Neighborhood bins, the paper's `d < n/2` rule at 64 bits.
const MAX_D: usize = 32;

/// One measured support size.
#[derive(Debug, Clone)]
pub struct KernelBenchRow {
    /// Unique outcomes in the support.
    pub n: usize,
    /// Scored pairs (`n²`).
    pub pairs: u128,
    /// Wall-clock seconds of the PR 1 `scores_parallel` at
    /// [`KernelBenchReport::threads`] threads. `None` when skipped
    /// (quick mode caps the slow reference at smaller supports).
    pub secs_reference: Option<f64>,
    /// Wall-clock seconds of the blocked branchless serial kernel.
    pub secs_blocked_serial: f64,
    /// Wall-clock seconds of the work-stealing kernel at
    /// [`KernelBenchReport::threads`] threads.
    pub secs_parallel: f64,
    /// Largest absolute score difference vs the reference (when run).
    pub max_abs_diff: Option<f64>,
}

impl KernelBenchRow {
    /// Measured speedup of the work-stealing kernel over the reference
    /// at the same thread count, when the reference was run.
    #[must_use]
    pub fn speedup_vs_reference(&self) -> Option<f64> {
        self.secs_reference.map(|r| r / self.secs_parallel)
    }

    /// Pair throughput of the new kernel, in millions of pairs/second.
    #[must_use]
    pub fn mpairs_per_sec(&self) -> f64 {
        self.pairs as f64 / self.secs_parallel / 1e6
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// Thread count used for *both* the reference and the new kernel.
    pub threads: usize,
    /// True when run with `--quick` (CI smoke: small sweep).
    pub quick: bool,
    /// One row per support size, ascending.
    pub rows: Vec<KernelBenchRow>,
}

fn synthetic_soa(n: usize, rng: &mut StdRng) -> (Vec<u64>, Vec<f64>) {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut keys = Vec::with_capacity(n);
    let mut probs = Vec::with_capacity(n);
    while keys.len() < n {
        let k = rng.gen::<u64>();
        if seen.insert(k) {
            keys.push(k);
            probs.push(rng.gen::<f64>() + 1e-6);
        }
    }
    (keys, probs)
}

/// Runs the sweep. Quick mode covers {4K, 16K}; the full sweep covers
/// N ∈ {4K, 16K, 64K, 256K} with the reference kernel measured at every
/// size — including 256K — so every cell of the emitted artifact is a
/// measurement, not an extrapolation.
///
/// Every size is above the default 2048-entry parallel threshold, so
/// even the quick (CI smoke) sweep exercises the work-stealing
/// scheduler, not just the serial fallback.
#[must_use]
pub fn run(quick: bool) -> KernelBenchReport {
    // `Hammer`'s default worker policy (every core, minimum 2 so the
    // work-stealing path — not the serial fallback — is what the
    // artifact records). Taken from the library rather than recomputed,
    // so the recorded thread count can never drift from what
    // reconstruction actually uses.
    let threads = Hammer::new().threads();
    let sizes: &[usize] = if quick {
        &[1 << 12, 1 << 14]
    } else {
        &[1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    // In quick mode skip the O(N²) scalar reference beyond 16K so CI
    // smoke stays fast; the full run measures it everywhere.
    let reference_cap = if quick { 1 << 14 } else { usize::MAX };
    run_sizes(sizes, reference_cap, threads, quick)
}

/// The measurement loop behind [`run`], parameterized so tests can
/// sweep tiny supports without paying for benchmark-scale timings.
fn run_sizes(
    sizes: &[usize],
    reference_cap: usize,
    threads: usize,
    quick: bool,
) -> KernelBenchReport {
    let weights: Vec<f64> = (0..MAX_D).map(|d| 1.0 / (1.0 + d as f64)).collect();
    let filter = FilterRule::LowerProbabilityOnly;
    let tuning = KernelTuning::default();
    let mut rng = StdRng::seed_from_u64(0x4A11);
    let mut rows = Vec::new();
    for &n in sizes {
        let (keys, probs) = synthetic_soa(n, &mut rng);
        let entries: Vec<(u128, f64)> = keys
            .iter()
            .map(|&k| u128::from(k))
            .zip(probs.iter().copied())
            .collect();

        let start = Instant::now();
        let blocked = kernel::scores(&keys, &probs, &weights, filter, &tuning);
        let secs_blocked_serial = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let parallel = kernel::scores_parallel(&keys, &probs, &weights, filter, threads, &tuning);
        let secs_parallel = start.elapsed().as_secs_f64();
        assert_eq!(parallel.len(), blocked.len());

        let (secs_reference, max_abs_diff) = if n <= reference_cap {
            let start = Instant::now();
            let oracle = reference::scores_parallel(&entries, &weights, filter, threads);
            let secs = start.elapsed().as_secs_f64();
            let diff = oracle
                .iter()
                .zip(&parallel)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            (Some(secs), Some(diff))
        } else {
            (None, None)
        };

        rows.push(KernelBenchRow {
            n,
            pairs: (n as u128) * (n as u128),
            secs_reference,
            secs_blocked_serial,
            secs_parallel,
            max_abs_diff,
        });
        eprintln!(
            "[bench-kernel] N={n}: reference {} s, blocked {:.3} s, parallel({threads}) {:.3} s{}",
            secs_reference.map_or_else(|| "skipped".into(), |s| format!("{s:.3}")),
            secs_blocked_serial,
            secs_parallel,
            rows.last()
                .unwrap()
                .speedup_vs_reference()
                .map_or_else(String::new, |s| format!(", speedup {s:.2}x")),
        );
    }
    KernelBenchReport {
        threads,
        quick,
        rows,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |x| format!("{x:.6}"))
}

impl KernelBenchReport {
    /// The speedup at the issue's checkpoint size (N = 64K), when that
    /// row was measured.
    #[must_use]
    pub fn speedup_at_64k(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.n == 1 << 16)
            .and_then(KernelBenchRow::speedup_vs_reference)
    }

    /// Serializes the sweep as the `BENCH_kernel.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"n\": {}, \"pairs\": {}, \"secs_reference_parallel\": {}, \
                 \"secs_blocked_serial\": {:.6}, \"secs_parallel\": {:.6}, \
                 \"speedup_vs_reference\": {}, \"mpairs_per_sec\": {:.3}, \
                 \"max_abs_diff_vs_reference\": {}, \"measured\": true}}",
                r.n,
                r.pairs,
                json_opt(r.secs_reference),
                r.secs_blocked_serial,
                r.secs_parallel,
                json_opt(r.speedup_vs_reference()),
                r.mpairs_per_sec(),
                r.max_abs_diff
                    .map_or_else(|| "null".into(), |d| format!("{d:.3e}")),
            ));
        }
        format!(
            "{{\n  \"artifact\": \"BENCH_kernel\",\n  \
             \"description\": \"O(N^2) scoring-kernel trajectory: PR 1 scalar reference vs \
             blocked/branchless/work-stealing kernel. Every timed cell is measured wall clock, \
             not extrapolated; Table 3's 256K-unique row is the n=262144 entry.\",\n  \
             \"n_bits\": {N_BITS},\n  \"max_d\": {MAX_D},\n  \"filter\": \"LowerProbabilityOnly\",\n  \
             \"threads\": {},\n  \"quick\": {},\n  \"rows\": [\n{}\n  ],\n  \
             \"speedup_vs_reference_at_65536\": {}\n}}\n",
            self.threads,
            self.quick,
            rows,
            json_opt(self.speedup_at_64k()),
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "unique outcomes",
            "reference (s)",
            "blocked serial (s)",
            "work-stealing (s)",
            "speedup",
            "Mpairs/s",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.n.to_string(),
                r.secs_reference.map_or_else(|| "-".into(), |s| fnum(s, 3)),
                fnum(r.secs_blocked_serial, 3),
                fnum(r.secs_parallel, 3),
                r.speedup_vs_reference()
                    .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
                fnum(r.mpairs_per_sec(), 1),
            ]);
        }
        format!(
            "\n=== bench-kernel: O(N^2) scoring kernel sweep (threads = {}) ===\n{table}",
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_serializes() {
        // Benchmark-scale timings belong to the CI `bench-kernel
        // --quick` step; the unit test sweeps tiny supports through the
        // same loop to guard the measurement + serialization paths.
        let report = run_sizes(&[256, 512], 256, 2, true);
        assert_eq!(report.rows.len(), 2);
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_kernel\""));
        assert!(json.contains("\"n\": 256"));
        // The capped row measures the reference (with a tight diff);
        // the row beyond the cap records null for it.
        assert!(report.rows[0].secs_reference.is_some());
        assert!(report.rows[0].max_abs_diff.unwrap() < 1e-9);
        assert!(report.rows[1].secs_reference.is_none());
        assert!(json.contains("\"secs_reference_parallel\": null"));
        // Render must not panic and must show every row.
        let text = report.render();
        assert!(text.contains("256") && text.contains("512"));
    }

    #[test]
    fn quick_sweep_sizes_cross_the_parallel_threshold() {
        // The CI smoke sweep must exercise the work-stealing scheduler,
        // not the serial fallback — pin the size list, not a run.
        let threshold = KernelTuning::default().parallel_threshold;
        for &n in &[1usize << 12, 1 << 14] {
            assert!(n >= threshold);
        }
    }
}

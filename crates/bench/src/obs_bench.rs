//! `bench-obs` — measures what the observability layer costs.
//!
//! Two scenarios, each run as alternating timing-off / timing-on
//! rounds (via [`hammer_obs::set_timing_enabled`], the global kill
//! switch that gates histograms and span capture):
//!
//! * **direct-hot-reconstruct** — the library-level kernel hot path,
//!   `Hammer::reconstruct_counts` in a tight loop. This is the row the
//!   <2% overhead claim is asserted on in `--quick` mode: the
//!   per-call cost of observability here is two `Instant::now()` reads
//!   and one relaxed atomic add against ~1 ms of kernel work.
//! * **direct-hot-with-roller** — the same hot path with a background
//!   thread folding registry snapshots into rollup rings every 5 ms
//!   (200× the production roll rate). The roller shares no lock with
//!   the metric write path, so this too is asserted < 2% in `--quick`.
//! * **serve-hot-cache-hit** — cache-hit requests through the full TCP
//!   server with 4 client threads, where tracing allocates a span tree
//!   per request. Informational: socket and scheduler noise dominate,
//!   so only a loose sanity bound is applied.
//!
//! Per-mode throughput is the **best round** (max ops/s), the standard
//! de-noising choice for an overhead comparison: the best round is the
//! one least perturbed by the OS, and the instrumentation cost — the
//! thing being measured — is present in every round of its mode.

use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use hammer_core::{Hammer, HammerConfig};
use hammer_dist::{BitString, Counts};
use hammer_serve::{serve, ServeClient, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Client threads for the serve scenario (matches `bench-serve`).
const CLIENTS: usize = 4;

/// Measured overhead of one scenario: obs-off vs obs-on throughput.
#[derive(Debug)]
pub struct ObsBenchRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Whether the quick-mode overhead bound is a hard assertion.
    pub asserted: bool,
    /// Rounds per mode (off and on each ran this many).
    pub rounds: usize,
    /// Reconstructions per round (summed over client threads).
    pub calls_per_round: u64,
    /// Best-round throughput with timing disabled.
    pub off_ops_per_sec: f64,
    /// Best-round throughput with timing enabled.
    pub on_ops_per_sec: f64,
}

impl ObsBenchRow {
    /// Throughput lost to observability, in percent (negative means
    /// the on rounds happened to run faster — pure noise).
    #[must_use]
    pub fn overhead_pct(&self) -> f64 {
        if self.off_ops_per_sec <= 0.0 {
            return 0.0;
        }
        (1.0 - self.on_ops_per_sec / self.off_ops_per_sec) * 100.0
    }
}

/// The full `BENCH_obs` artifact.
#[derive(Debug)]
pub struct ObsBenchReport {
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// One row per scenario.
    pub rows: Vec<ObsBenchRow>,
}

/// Restores the timing switch (on) however a measurement exits.
struct TimingGuard;

impl Drop for TimingGuard {
    fn drop(&mut self) {
        hammer_obs::set_timing_enabled(true);
    }
}

/// A synthetic 16-bit histogram with `unique` distinct outcomes,
/// deterministic in `salt` (same shape as `bench-serve`'s).
fn dense_counts(unique: usize, salt: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut counts = Counts::new(16).expect("valid width");
    for _ in 0..unique {
        let key = rng.gen::<u64>() & 0xFFFF;
        counts.record_n(BitString::new(key, 16), 1 + rng.gen::<u64>() % 100);
    }
    counts.record_n(BitString::new(salt & 0xFFFF, 16), 1 + salt);
    counts
}

/// One timed round of direct library reconstructions, as ops/s.
fn direct_round(hammer: &Hammer, counts: &Counts, calls: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..calls {
        black_box(hammer.reconstruct_counts(black_box(counts)));
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// Alternates off/on rounds (off first) and keeps the best of each.
/// `round` receives the round index and returns that round's ops/s;
/// the timing switch is already set when it runs.
fn alternate_rounds<F: FnMut(usize) -> f64>(rounds: usize, mut round: F) -> (f64, f64) {
    let _restore = TimingGuard;
    let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
    for i in 0..2 * rounds {
        let timing_on = i % 2 == 1;
        hammer_obs::set_timing_enabled(timing_on);
        let ops = round(i);
        if timing_on {
            best_on = best_on.max(ops);
        } else {
            best_off = best_off.max(ops);
        }
    }
    (best_off, best_on)
}

/// The asserted row: the library hot path with no server in the way.
fn run_direct(quick: bool) -> ObsBenchRow {
    let (rounds, calls) = if quick { (7, 24) } else { (12, 64) };
    let hammer = Hammer::with_config(HammerConfig::paper());
    let counts = dense_counts(768, 0);
    // Warm up both paths (page in the kernel, register the global
    // histograms) before any timed round.
    hammer_obs::set_timing_enabled(true);
    black_box(hammer.reconstruct_counts(&counts));
    let (off, on) = alternate_rounds(rounds, |_| direct_round(&hammer, &counts, calls));
    eprintln!("[bench-obs] direct-hot-reconstruct: off {off:.0} ops/s, on {on:.0} ops/s");
    ObsBenchRow {
        scenario: "direct-hot-reconstruct",
        asserted: true,
        rounds,
        calls_per_round: calls,
        off_ops_per_sec: off,
        on_ops_per_sec: on,
    }
}

/// The rollup-ring row: the same library hot path, with and without a
/// background roller aggressively folding registry snapshots into a
/// [`hammer_obs::TimeSeries`]. The roller never touches the metric
/// write path (writers stay relaxed atomic adds), so this bounds the
/// cost of the snapshot-and-fold the serving tier runs once per second
/// — here ticked every 5 ms, a 200× exaggeration of the production
/// rate.
fn run_rollup(quick: bool) -> ObsBenchRow {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (rounds, calls) = if quick { (7, 24) } else { (12, 64) };
    let hammer = Hammer::with_config(HammerConfig::paper());
    let counts = dense_counts(768, 0);
    hammer_obs::set_timing_enabled(true);
    black_box(hammer.reconstruct_counts(&counts));

    let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
    for i in 0..2 * rounds {
        let roller_on = i % 2 == 1;
        let stop = Arc::new(AtomicBool::new(false));
        let roller = roller_on.then(|| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let ts = hammer_obs::TimeSeries::new(hammer_obs::RollupConfig {
                    window_ms: 5,
                    ..hammer_obs::RollupConfig::default()
                });
                while !stop.load(Ordering::Relaxed) {
                    ts.roll(&hammer_obs::Registry::global().snapshot());
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                black_box(ts.windows_rolled());
            })
        });
        let ops = direct_round(&hammer, &counts, calls);
        stop.store(true, Ordering::Relaxed);
        if let Some(t) = roller {
            t.join().expect("roller thread");
        }
        if roller_on {
            best_on = best_on.max(ops);
        } else {
            best_off = best_off.max(ops);
        }
    }
    eprintln!("[bench-obs] direct-hot-with-roller: off {best_off:.0} ops/s, on {best_on:.0} ops/s");
    ObsBenchRow {
        scenario: "direct-hot-with-roller",
        asserted: true,
        rounds,
        calls_per_round: calls,
        off_ops_per_sec: best_off,
        on_ops_per_sec: best_on,
    }
}

/// One timed round of concurrent cache-hit requests, as requests/s.
fn serve_round(addr: &str, per_client: u64, counts: &Counts) -> f64 {
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.to_string();
            let barrier = Arc::clone(&barrier);
            let counts = counts.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let config = HammerConfig::paper();
                barrier.wait();
                for _ in 0..per_client {
                    black_box(
                        client
                            .reconstruct(&counts, &config)
                            .expect("cache hit succeeds"),
                    );
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().expect("client thread");
    }
    (CLIENTS as u64 * per_client) as f64 / start.elapsed().as_secs_f64()
}

/// The informational row: the same comparison through the TCP server,
/// all requests hitting one cached entry.
fn run_serve(quick: bool) -> ObsBenchRow {
    let (rounds, per_client) = if quick { (3, 60) } else { (6, 250) };
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_limit: 4096,
        cache_mb: 128,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    let counts = dense_counts(4096, 0);

    // Populate the cache (and warm the connection path) once, outside
    // any timed round.
    hammer_obs::set_timing_enabled(true);
    let mut warm = ServeClient::connect(&addr).expect("warmup client connects");
    warm.reconstruct(&counts, &HammerConfig::paper())
        .expect("warmup reconstruct");
    drop(warm);

    let (off, on) = alternate_rounds(rounds, |_| serve_round(&addr, per_client, &counts));
    server.shutdown();
    let _ = server.wait();
    eprintln!("[bench-obs] serve-hot-cache-hit: off {off:.0} req/s, on {on:.0} req/s");
    ObsBenchRow {
        scenario: "serve-hot-cache-hit",
        asserted: false,
        rounds,
        calls_per_round: CLIENTS as u64 * per_client,
        off_ops_per_sec: off,
        on_ops_per_sec: on,
    }
}

/// Re-measures a scenario up to three times in quick mode if it lands
/// over its overhead bound: both sides of the comparison are noisy
/// single-machine measurements, and quick mode often shares the box
/// with a parallel test suite. A genuine regression fails every
/// attempt; a scheduler hiccup does not.
fn measure_with_bound<F: Fn() -> ObsBenchRow>(
    quick: bool,
    bound_pct: f64,
    measure: F,
) -> ObsBenchRow {
    let attempts = if quick { 3 } else { 1 };
    let mut row = measure();
    for _ in 1..attempts {
        if row.overhead_pct() < bound_pct {
            break;
        }
        eprintln!(
            "[bench-obs] {}: {:+.2}% exceeds the {bound_pct}% bound, re-measuring",
            row.scenario,
            row.overhead_pct(),
        );
        row = measure();
    }
    row
}

/// Runs the overhead sweep. In `--quick` mode the direct row's
/// overhead is a hard <2% assertion (the CI smoke); the serve row only
/// gets a loose sanity bound because socket scheduling noise at
/// sub-millisecond request latencies dwarfs the instrumentation.
#[must_use]
pub fn run(quick: bool) -> ObsBenchReport {
    let rows = vec![
        measure_with_bound(quick, 2.0, || run_direct(quick)),
        measure_with_bound(quick, 2.0, || run_rollup(quick)),
        measure_with_bound(quick, 25.0, || run_serve(quick)),
    ];
    if quick {
        for direct in &rows[..2] {
            assert!(
                direct.overhead_pct() < 2.0,
                "{} overhead on the direct hot path must stay under 2%: \
                 off {:.0} ops/s, on {:.0} ops/s ({:+.2}%)",
                direct.scenario,
                direct.off_ops_per_sec,
                direct.on_ops_per_sec,
                direct.overhead_pct(),
            );
        }
        let served = &rows[2];
        assert!(
            served.overhead_pct() < 25.0,
            "serve-path overhead is wildly out of band: {served:?}"
        );
    }
    ObsBenchReport { quick, rows }
}

impl ObsBenchReport {
    /// Serializes the sweep as the `BENCH_obs.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"asserted\": {}, \"rounds\": {}, \
                 \"calls_per_round\": {}, \"off_ops_per_sec\": {:.1}, \
                 \"on_ops_per_sec\": {:.1}, \"overhead_pct\": {:.3}, \"measured\": true}}",
                r.scenario,
                r.asserted,
                r.rounds,
                r.calls_per_round,
                r.off_ops_per_sec,
                r.on_ops_per_sec,
                r.overhead_pct(),
            ));
        }
        format!(
            "{{\n  \"artifact\": \"BENCH_obs\",\n  \
             \"description\": \"Observability overhead: identical workloads run with the \
             hammer_obs timing switch off vs on, alternating rounds, best round per mode. \
             direct-hot-reconstruct is the library kernel hot path (the <2% claim); \
             direct-hot-with-roller runs the same hot path against a background thread \
             folding registry snapshots into rollup rings every 5 ms (200x the production \
             rate, same <2% bound); serve-hot-cache-hit drives cache hits through the TCP \
             server with {} client threads and carries full span tracing per request. Every cell is measured \
             wall clock (not extrapolated).\",\n  \
             \"quick\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            CLIENTS, self.quick, rows,
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "scenario",
            "rounds",
            "calls/round",
            "off ops/s",
            "on ops/s",
            "overhead",
            "bound",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.scenario.to_string(),
                r.rounds.to_string(),
                r.calls_per_round.to_string(),
                fnum(r.off_ops_per_sec, 0),
                fnum(r.on_ops_per_sec, 0),
                format!("{:+.2}%", r.overhead_pct()),
                if r.asserted { "<2% asserted" } else { "sanity" }.to_string(),
            ]);
        }
        format!("bench-obs: timing off vs on, best of alternating rounds\n{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math_is_sane() {
        let row = ObsBenchRow {
            scenario: "x",
            asserted: false,
            rounds: 1,
            calls_per_round: 1,
            off_ops_per_sec: 1000.0,
            on_ops_per_sec: 990.0,
        };
        assert!((row.overhead_pct() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quick_sweep_runs_end_to_end() {
        let report = run(true);
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.off_ops_per_sec > 0.0);
            assert!(row.on_ops_per_sec > 0.0);
        }
        assert!(
            hammer_obs::timing_enabled(),
            "the sweep must leave timing enabled"
        );
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_obs\""));
        assert!(json.contains("\"overhead_pct\""));
        assert!(report.render().contains("overhead"));
    }
}

//! A minimal JSON reader for `repro top`.
//!
//! The workspace carries no serde; the exposition endpoints emit flat,
//! well-formed JSON, and this recursive-descent parser is the ~150
//! lines needed to read it back. It accepts exactly RFC 8259 JSON
//! (objects, arrays, strings with escapes, numbers, booleans, null)
//! and nothing more — no comments, no trailing commas.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (ignoring surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Describes the first malformed construct and its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as a `u64` (negative and fractional values map
    /// to `None`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean payload, if a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&what) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", what as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not emitted by our
                        // endpoints; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"name":"serve.requests","kind":"counter","points":[{"unix_ms":1000,"delta":5,"per_sec":5.0},{"unix_ms":2000,"delta":0,"per_sec":0.0}],"ok":true,"none":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("serve.requests"));
        let points = v.get("points").and_then(Json::as_array).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].get("delta").and_then(Json::as_u64), Some(5));
        assert_eq!(points[0].get("per_sec").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(Json::parse("-3.5e2").unwrap().as_f64(), Some(-350.0));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("'single'").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse(" [ ] ").unwrap(), Json::Arr(vec![]));
    }
}

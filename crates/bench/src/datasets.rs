//! Synthetic stand-ins for the paper's two experimental datasets
//! (Tables 1–2): the IBM benchmark suite (BV + QAOA on three Falcon-class
//! backends) and the Google Sycamore QAOA dataset (grid / 3-regular /
//! SK Maxcut instances).
//!
//! Instance counts, size ranges and layer counts mirror the tables;
//! every instance is seeded so the whole dataset is reproducible.

use hammer_circuits::BernsteinVazirani;
use hammer_dist::BitString;
use hammer_graphs::{generators, Graph};
use hammer_sim::DeviceModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three IBM evaluation backends (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbmBackend {
    /// IBM-Paris-like preset.
    Paris,
    /// IBM-Manhattan-like preset (noisiest).
    Manhattan,
    /// IBM-Casablanca-like preset (cleanest).
    Casablanca,
}

impl IbmBackend {
    /// All three backends.
    pub const ALL: [IbmBackend; 3] = [Self::Paris, Self::Manhattan, Self::Casablanca];

    /// Instantiates the device at width `n`.
    #[must_use]
    pub fn device(self, n: usize) -> DeviceModel {
        match self {
            Self::Paris => DeviceModel::ibm_paris(n),
            Self::Manhattan => DeviceModel::ibm_manhattan(n),
            Self::Casablanca => DeviceModel::ibm_casablanca(n),
        }
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Paris => "paris",
            Self::Manhattan => "manhattan",
            Self::Casablanca => "casablanca",
        }
    }
}

/// One Bernstein–Vazirani instance of the IBM suite.
#[derive(Debug, Clone)]
pub struct BvInstance {
    /// Instance identifier, e.g. `bv-08-k3-paris`.
    pub id: String,
    /// The benchmark (key + circuit builder).
    pub bench: BernsteinVazirani,
    /// The backend it runs on.
    pub backend: IbmBackend,
}

/// The QAOA problem families of the two datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// Random 3-regular graphs (both datasets' core family).
    ThreeRegular,
    /// 2-D grid graphs (Google; SWAP-free on Sycamore).
    Grid,
    /// Erdős–Rényi with the given edge probability (IBM "Rand Graphs").
    ErdosRenyi(f64),
    /// Ring / 2-regular (Fig. 12's low-degree family).
    Ring,
    /// Sherrington–Kirkpatrick ±1 complete graphs (Google).
    SherringtonKirkpatrick,
}

impl GraphFamily {
    /// Short name for reports and angle caching.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ThreeRegular => "3reg",
            Self::Grid => "grid",
            Self::ErdosRenyi(_) => "er",
            Self::Ring => "ring",
            Self::SherringtonKirkpatrick => "sk",
        }
    }

    /// Samples an `n`-node instance of the family.
    ///
    /// # Panics
    ///
    /// Panics on family-specific size constraints (3-regular needs even
    /// `n ≥ 4`; ring needs `n ≥ 3`).
    #[must_use]
    pub fn sample(self, n: usize, rng: &mut StdRng) -> Graph {
        match self {
            Self::ThreeRegular => generators::random_regular(n, 3, rng),
            Self::Grid => generators::near_square_grid(n),
            Self::ErdosRenyi(p) => {
                // Reject disconnected samples: the paper's instances are
                // connected Maxcut problems.
                for _ in 0..100 {
                    let g = generators::erdos_renyi(n, p, rng);
                    if g.is_connected() {
                        return g;
                    }
                }
                panic!("failed to sample a connected G({n},{p}) instance");
            }
            Self::Ring => generators::ring(n),
            Self::SherringtonKirkpatrick => generators::sherrington_kirkpatrick(n, rng),
        }
    }
}

/// One QAOA instance of either dataset.
#[derive(Debug, Clone)]
pub struct QaoaInstance {
    /// Instance identifier, e.g. `qaoa-3reg-n10-p2-s0`.
    pub id: String,
    /// The problem graph.
    pub graph: Graph,
    /// The family it was drawn from.
    pub family: GraphFamily,
    /// Number of QAOA layers.
    pub p: usize,
    /// Seed index within its `(family, n, p)` group.
    pub seed: u64,
}

impl QaoaInstance {
    /// Samples the instance identified by `(family, n, p, seed)` — the
    /// same constructor the dataset suites use, exposed for experiments
    /// that need ad-hoc instances.
    #[must_use]
    pub fn with_seed(family: GraphFamily, n: usize, p: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(
            0xDA7A_0000 ^ (n as u64) << 32 ^ (p as u64) << 24 ^ seed.wrapping_mul(0x9E37),
        );
        Self {
            id: format!("qaoa-{}-n{n:02}-p{p}-s{seed}", family.name()),
            graph: family.sample(n, &mut rng),
            family,
            p,
            seed,
        }
    }

    /// Number of nodes / qubits.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// Deterministic random BV key of `width` bits (never all-zeros, which
/// would make the circuit CX-free).
#[must_use]
pub fn bv_key(width: usize, seed: u64) -> BitString {
    let mut rng = StdRng::seed_from_u64(0xB5_0000 ^ (width as u64) << 32 ^ seed);
    loop {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let bits = rng.gen::<u64>() & mask;
        if bits != 0 {
            return BitString::new(bits, width);
        }
    }
}

/// The IBM BV suite of Table 2: 88 circuits with 5–15 data qubits
/// (11 widths × 8 keys), each runnable on all three backends. In quick
/// mode: widths 5–9, 2 keys each.
#[must_use]
pub fn ibm_bv_suite(quick: bool) -> Vec<BvInstance> {
    let (widths, keys_per_width): (Vec<usize>, u64) = if quick {
        ((5..=9).collect(), 2)
    } else {
        ((5..=15).collect(), 8)
    };
    let mut out = Vec::new();
    for &w in &widths {
        for k in 0..keys_per_width {
            let key = bv_key(w, k);
            // Alternate backends across instances; fig8b additionally
            // fans each instance out to all three.
            let backend = IbmBackend::ALL[(w + k as usize) % 3];
            out.push(BvInstance {
                id: format!("bv-{w:02}-k{k}-{}", backend.name()),
                bench: BernsteinVazirani::new(key),
                backend,
            });
        }
    }
    out
}

/// The IBM QAOA 3-regular suite of Table 2: ~70 circuits, 6–20 nodes
/// (even), p ∈ {2, 4}. Quick mode: n ≤ 10, p = 2, one seed.
#[must_use]
pub fn ibm_qaoa_3reg_suite(quick: bool) -> Vec<QaoaInstance> {
    let mut out = Vec::new();
    if quick {
        for n in [6usize, 8, 10] {
            out.push(QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, 2, 0));
        }
        return out;
    }
    for p in [2usize, 4] {
        for n in (6..=20).step_by(2) {
            for seed in 0..5 {
                if out.len() < 70 {
                    out.push(QaoaInstance::with_seed(
                        GraphFamily::ThreeRegular,
                        n,
                        p,
                        seed,
                    ));
                }
            }
        }
    }
    out.truncate(70);
    out
}

/// The IBM QAOA random-graph suite of Table 2: ~70 Erdős–Rényi
/// instances, 5–20 nodes, connectivity 0.2–0.8, p ∈ {2, 4}. Quick mode:
/// a handful of small instances.
#[must_use]
pub fn ibm_qaoa_rand_suite(quick: bool) -> Vec<QaoaInstance> {
    let connectivities = [0.2, 0.4, 0.6, 0.8];
    let mut out = Vec::new();
    if quick {
        for (i, n) in [6usize, 8, 10].into_iter().enumerate() {
            out.push(QaoaInstance::with_seed(
                GraphFamily::ErdosRenyi(connectivities[i % 4]),
                n,
                2,
                0,
            ));
        }
        return out;
    }
    let mut i = 0usize;
    'outer: for seed in 0..3u64 {
        for p in [2usize, 4] {
            for n in 5..=20 {
                if out.len() >= 70 {
                    break 'outer;
                }
                let c = connectivities[i % connectivities.len()];
                out.push(QaoaInstance::with_seed(
                    GraphFamily::ErdosRenyi(c),
                    n,
                    p,
                    seed,
                ));
                i += 1;
            }
        }
    }
    out
}

/// The Google grid suite of Table 1: 120 circuits, 6–20 nodes,
/// p = 1–5 (8 sizes × 5 layer counts × 3 seeds). Quick mode: n ≤ 12,
/// p ≤ 3, one seed.
#[must_use]
pub fn google_grid_suite(quick: bool) -> Vec<QaoaInstance> {
    let mut out = Vec::new();
    let (sizes, ps, seeds): (Vec<usize>, Vec<usize>, u64) = if quick {
        (vec![6, 9, 12], vec![1, 2, 3], 1)
    } else {
        ((6..=20).step_by(2).collect(), vec![1, 2, 3, 4, 5], 3)
    };
    for &p in &ps {
        for &n in &sizes {
            for seed in 0..seeds {
                out.push(QaoaInstance::with_seed(GraphFamily::Grid, n, p, seed));
            }
        }
    }
    out
}

/// The Google 3-regular suite of Table 1: 200 circuits, 4–16 nodes
/// (even), p = 1–3. Quick mode: n ≤ 10, p ≤ 2, one seed.
#[must_use]
pub fn google_3reg_suite(quick: bool) -> Vec<QaoaInstance> {
    let mut out = Vec::new();
    if quick {
        for p in [1usize, 2] {
            for n in [6usize, 8, 10] {
                out.push(QaoaInstance::with_seed(GraphFamily::ThreeRegular, n, p, 0));
            }
        }
        return out;
    }
    for p in [1usize, 2, 3] {
        for n in (4..=16).step_by(2) {
            for seed in 0..10 {
                if out.len() < 200 {
                    out.push(QaoaInstance::with_seed(
                        GraphFamily::ThreeRegular,
                        n,
                        p,
                        seed,
                    ));
                }
            }
        }
    }
    out
}

/// Trials per job: Google used 25 000, IBM defaults to 8 192
/// (§5.2, §6.6); quick mode uses 2 048.
#[must_use]
pub fn trials(google: bool, quick: bool) -> u64 {
    match (google, quick) {
        (_, true) => 2048,
        (true, false) => 25_000,
        (false, false) => 8192,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_suite_matches_table_two() {
        let suite = ibm_bv_suite(false);
        assert_eq!(suite.len(), 88);
        let widths: Vec<usize> = suite.iter().map(|i| i.bench.num_data_qubits()).collect();
        assert_eq!(*widths.iter().min().unwrap(), 5);
        assert_eq!(*widths.iter().max().unwrap(), 15);
        // No duplicate ids.
        let mut ids: Vec<&str> = suite.iter().map(|i| i.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 88);
    }

    #[test]
    fn bv_keys_are_deterministic_and_nonzero() {
        assert_eq!(bv_key(8, 3), bv_key(8, 3));
        assert_ne!(bv_key(8, 3), bv_key(8, 4));
        for w in 1..=20 {
            assert!(bv_key(w, 0).weight() > 0);
        }
    }

    #[test]
    fn ibm_qaoa_suites_match_table_two() {
        let reg = ibm_qaoa_3reg_suite(false);
        assert_eq!(reg.len(), 70);
        assert!(reg.iter().all(|i| i.p == 2 || i.p == 4));
        assert!(reg.iter().all(|i| i.n() >= 6 && i.n() <= 20));
        let rand = ibm_qaoa_rand_suite(false);
        assert_eq!(rand.len(), 70);
        assert!(rand.iter().all(|i| i.graph.is_connected()));
    }

    #[test]
    fn google_suites_match_table_one() {
        let grid = google_grid_suite(false);
        assert_eq!(grid.len(), 120);
        assert!(grid.iter().all(|i| (1..=5).contains(&i.p)));
        let reg = google_3reg_suite(false);
        assert_eq!(reg.len(), 200);
        assert!(reg.iter().all(|i| (1..=3).contains(&i.p)));
        assert!(reg
            .iter()
            .all(|i| i.n() % 2 == 0 && i.n() >= 4 && i.n() <= 16));
    }

    #[test]
    fn quick_suites_are_small_but_representative() {
        assert!(ibm_bv_suite(true).len() <= 12);
        assert!(google_grid_suite(true).len() <= 12);
        assert!(google_3reg_suite(true).len() <= 8);
        assert!(!ibm_qaoa_3reg_suite(true).is_empty());
        assert!(!ibm_qaoa_rand_suite(true).is_empty());
    }

    #[test]
    fn instances_are_reproducible() {
        let a = QaoaInstance::with_seed(GraphFamily::ThreeRegular, 10, 2, 1);
        let b = QaoaInstance::with_seed(GraphFamily::ThreeRegular, 10, 2, 1);
        assert_eq!(a.graph, b.graph);
        let c = QaoaInstance::with_seed(GraphFamily::ThreeRegular, 10, 2, 2);
        assert_ne!(a.graph, c.graph);
    }

    #[test]
    fn trials_match_paper() {
        assert_eq!(trials(true, false), 25_000);
        assert_eq!(trials(false, false), 8192);
        assert_eq!(trials(true, true), 2048);
    }
}

//! Plain-text report building: fixed-width tables and sparklines for the
//! experiment harness output.

use std::fmt::Write as _;

/// A fixed-width text table accumulated row by row.
///
/// # Example
///
/// ```
/// use hammer_bench::report::Table;
///
/// let mut t = Table::new(&["n", "pst"]);
/// t.row(&["8", "0.41"]);
/// let s = t.to_string();
/// assert!(s.contains("pst"));
/// assert!(s.contains("0.41"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<width$}", h, width = widths[i] + 2);
        }
        writeln!(f, "{}", line.trim_end())?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        )?;
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}", cell, width = widths[i] + 2);
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places.
#[must_use]
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// A Unicode sparkline of a non-negative series — compact histograms for
/// the text reports.
///
/// # Example
///
/// ```
/// use hammer_bench::report::sparkline;
///
/// let s = sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if values.is_empty() || max <= 0.0 {
        return "▁".repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

/// An ASCII horizontal bar scaled to `width` characters at `value/max`.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// A report section: a titled block with the paper's expectation quoted,
/// used by every experiment.
#[must_use]
pub fn section(id: &str, title: &str, paper_expectation: &str) -> String {
    format!("\n=== {id}: {title} ===\npaper: {paper_expectation}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer-name", "2.5"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn sparkline_peaks() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[1], '█');
        assert!(chars[0] < chars[1]);
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(1.0, 1.0, 10), "##########");
        assert_eq!(bar(0.5, 1.0, 10), "#####");
        assert_eq!(bar(0.0, 1.0, 10), "");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(-0.5, 3), "-0.500");
    }

    #[test]
    fn section_contains_id_and_expectation() {
        let s = section("fig8b", "BV improvement", "gmean PST 1.38x");
        assert!(s.contains("fig8b"));
        assert!(s.contains("1.38x"));
    }
}

//! The `repro bench-sim` measurement harness: sweeps the Monte-Carlo
//! trajectory engine over register widths and emits the
//! `BENCH_sim.json` trajectory artifact.
//!
//! Every figure/table sweep of the reproduction runs thousands of
//! trajectory trials, so simulator throughput bounds every scenario we
//! can reproduce. This harness measures the three stages of the kernel
//! subsystem separately against the pre-subsystem baseline
//! ([`hammer_sim::TrajectoryEngine::sample_reference`]):
//!
//! 1. **gate kernels** — specialized passes, full re-simulation per
//!    faulty trial, one thread;
//! 2. **+ checkpointing** — prefix states shared/forked at fault sites;
//! 3. **+ trial parallelism** — the trial budget split across worker
//!    threads.

use std::time::Instant;

use hammer_sim::{Circuit, DeviceModel, GateKernels, SimTuning, TrajectoryEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trials per measured width (scaled down by `--quick`).
const SEED: u64 = 0x51B7;

/// One measured register width.
#[derive(Debug, Clone)]
pub struct SimBenchRow {
    /// Register width (qubits); the state holds `2^qubits` amplitudes.
    pub qubits: usize,
    /// Gate count of the benchmark circuit.
    pub gates: usize,
    /// Monte-Carlo trials per configuration.
    pub trials: u64,
    /// Wall-clock seconds of the pre-subsystem baseline
    /// (`sample_reference`: scalar kernels, full re-simulation per
    /// faulty trial, per-moment idle draws, one thread).
    pub secs_reference: f64,
    /// Stage 1: specialized gate kernels only (no checkpointing, one
    /// thread).
    pub secs_kernels: f64,
    /// Stage 2: + prefix checkpointing (one thread).
    pub secs_checkpoint: f64,
    /// Stage 3: + trial parallelism at [`SimBenchReport::threads`]
    /// workers.
    pub secs_parallel: f64,
}

impl SimBenchRow {
    /// Speedup of the specialized kernels alone.
    #[must_use]
    pub fn speedup_kernels(&self) -> f64 {
        self.secs_reference / self.secs_kernels
    }

    /// Speedup of kernels + checkpointing (single-threaded — the same
    /// thread count as the baseline).
    #[must_use]
    pub fn speedup_checkpoint(&self) -> f64 {
        self.secs_reference / self.secs_checkpoint
    }

    /// End-to-end speedup of the full fast path.
    #[must_use]
    pub fn speedup_end_to_end(&self) -> f64 {
        self.secs_reference / self.secs_parallel
    }

    /// Trial throughput of the full fast path, in trials/second.
    #[must_use]
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.secs_parallel
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct SimBenchReport {
    /// Worker threads used by the trial-parallel stage.
    pub threads: usize,
    /// True when run with `--quick` (CI smoke: small sweep).
    pub quick: bool,
    /// One row per register width, ascending.
    pub rows: Vec<SimBenchRow>,
}

/// The benchmark workload: a layered circuit in the shape of the
/// paper's benchmarks (Hadamard walls, CX ladders, parametric phase
/// layers), shallow enough that trials carry the ~1 fault typical of
/// the NISQ regime the paper evaluates.
#[must_use]
pub fn bench_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..3 {
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        for q in 0..n {
            c.rz(q, 0.17 + 0.31 * (layer as f64) + 0.05 * q as f64);
        }
    }
    c
}

/// The cumulative stage configurations measured against the
/// `sample_reference` baseline, in measurement order: specialized
/// kernels only, + prefix checkpointing, + trial parallelism. Shared
/// with the criterion `simulator` bench so the two harnesses can never
/// measure different stages.
#[must_use]
pub fn stage_tunings() -> [(&'static str, SimTuning); 3] {
    let kernels_only = SimTuning {
        kernels: GateKernels::Specialized,
        checkpoint: false,
        threads: 1,
        gate_parallel_threshold: usize::MAX,
    };
    [
        ("kernels", kernels_only),
        ("checkpoint", SimTuning::serial()),
        ("parallel", SimTuning::default()),
    ]
}

/// Runs the sweep. Quick mode covers 10 and 12 qubits with small trial
/// budgets (CI smoke); the full sweep covers {10, 13, 16} qubits —
/// the 16-qubit row is the issue's ≥ 4x checkpoint.
#[must_use]
pub fn run(quick: bool) -> SimBenchReport {
    let sizes: &[(usize, u64)] = if quick {
        &[(10, 300), (12, 200)]
    } else {
        &[(10, 3000), (13, 1200), (16, 600)]
    };
    run_sizes(sizes, quick)
}

/// The measurement loop behind [`run`], parameterized so tests can
/// sweep tiny instances without paying for benchmark-scale timings.
fn run_sizes(sizes: &[(usize, u64)], quick: bool) -> SimBenchReport {
    let threads = SimTuning::default().threads;
    let [(_, kernels_only), (_, checkpointed), (_, parallel)] = stage_tunings();

    let mut rows = Vec::new();
    for &(n, trials) in sizes {
        let circuit = bench_circuit(n);
        let device = DeviceModel::ibm_paris(n);
        let engine = TrajectoryEngine::new(&device);

        let time_sample = |tuning: &SimTuning| {
            let engine = engine.clone().with_tuning(*tuning);
            let start = Instant::now();
            let counts = engine
                .sample(&circuit, trials, &mut StdRng::seed_from_u64(SEED))
                .expect("benchmark instance is simulable");
            assert_eq!(counts.total(), trials);
            start.elapsed().as_secs_f64()
        };

        let start = Instant::now();
        let reference_counts = engine
            .sample_reference(&circuit, trials, &mut StdRng::seed_from_u64(SEED))
            .expect("benchmark instance is simulable");
        let secs_reference = start.elapsed().as_secs_f64();
        assert_eq!(reference_counts.total(), trials);

        let secs_kernels = time_sample(&kernels_only);
        let secs_checkpoint = time_sample(&checkpointed);
        let secs_parallel = time_sample(&parallel);

        rows.push(SimBenchRow {
            qubits: n,
            gates: circuit.gate_count(),
            trials,
            secs_reference,
            secs_kernels,
            secs_checkpoint,
            secs_parallel,
        });
        let r = rows.last().unwrap();
        eprintln!(
            "[bench-sim] {n} qubits × {trials} trials: reference {secs_reference:.3} s, \
             kernels {secs_kernels:.3} s ({:.2}x), +checkpoint {secs_checkpoint:.3} s ({:.2}x), \
             +threads({threads}) {secs_parallel:.3} s ({:.2}x)",
            r.speedup_kernels(),
            r.speedup_checkpoint(),
            r.speedup_end_to_end(),
        );
    }
    SimBenchReport {
        threads,
        quick,
        rows,
    }
}

impl SimBenchReport {
    /// The end-to-end speedup at the issue's checkpoint width
    /// (16 qubits), when that row was measured.
    #[must_use]
    pub fn speedup_at_16q(&self) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.qubits == 16)
            .map(SimBenchRow::speedup_end_to_end)
    }

    /// Serializes the sweep as the `BENCH_sim.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"qubits\": {}, \"gates\": {}, \"trials\": {}, \
                 \"secs_reference\": {:.6}, \"secs_gate_kernels\": {:.6}, \
                 \"secs_checkpoint\": {:.6}, \"secs_parallel\": {:.6}, \
                 \"speedup_gate_kernels\": {:.3}, \"speedup_checkpoint\": {:.3}, \
                 \"speedup_end_to_end\": {:.3}, \"trials_per_sec\": {:.1}, \
                 \"measured\": true}}",
                r.qubits,
                r.gates,
                r.trials,
                r.secs_reference,
                r.secs_kernels,
                r.secs_checkpoint,
                r.secs_parallel,
                r.speedup_kernels(),
                r.speedup_checkpoint(),
                r.speedup_end_to_end(),
                r.trials_per_sec(),
            ));
        }
        let speedup_16q = self
            .speedup_at_16q()
            .map_or_else(|| "null".into(), |s| format!("{s:.3}"));
        format!(
            "{{\n  \"artifact\": \"BENCH_sim\",\n  \
             \"description\": \"TrajectoryEngine::sample trajectory: pre-subsystem baseline \
             (scalar kernels, full re-simulation per faulty trial) vs the staged fast path \
             (specialized gate kernels, prefix checkpointing, trial parallelism). Every timed \
             cell is measured wall clock on the layered benchmark circuit under the ibm_paris \
             noise model; stage columns are cumulative and stages 1-2 run on one thread, the \
             same thread count as the baseline.\",\n  \
             \"device\": \"ibm_paris\",\n  \"threads\": {},\n  \"quick\": {},\n  \
             \"rows\": [\n{}\n  ],\n  \"speedup_end_to_end_at_16_qubits\": {}\n}}\n",
            self.threads, self.quick, rows, speedup_16q,
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "qubits",
            "gates",
            "trials",
            "reference (s)",
            "kernels (s)",
            "+checkpoint (s)",
            "+threads (s)",
            "speedup",
            "trials/s",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.qubits.to_string(),
                r.gates.to_string(),
                r.trials.to_string(),
                fnum(r.secs_reference, 3),
                fnum(r.secs_kernels, 3),
                fnum(r.secs_checkpoint, 3),
                fnum(r.secs_parallel, 3),
                format!("{:.2}x", r.speedup_end_to_end()),
                fnum(r.trials_per_sec(), 0),
            ]);
        }
        format!(
            "\n=== bench-sim: trajectory-engine sweep (threads = {}) ===\n{table}",
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_serializes() {
        // Benchmark-scale timings belong to the CI `bench-sim --quick`
        // step; the unit test sweeps tiny instances through the same
        // loop to guard the measurement + serialization paths.
        let report = run_sizes(&[(4, 40), (5, 30)], true);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.secs_reference > 0.0));
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_sim\""));
        assert!(json.contains("\"qubits\": 4"));
        // No 16-qubit row in the tiny sweep.
        assert!(json.contains("\"speedup_end_to_end_at_16_qubits\": null"));
        let text = report.render();
        assert!(text.contains("bench-sim") && text.contains('4') && text.contains('5'));
    }

    #[test]
    fn bench_circuit_is_representative() {
        let c = bench_circuit(10);
        // Mixed gate set: butterflies, permutations and diagonals.
        assert!(c.cx_count() > 0);
        assert!(c.gate_count() > 3 * c.cx_count());
        assert_eq!(c.num_qubits(), 10);
    }
}

//! The reproduction harness: synthetic datasets mirroring the paper's
//! Tables 1–2, shared execution pipelines, per-figure experiments and
//! text reporting.
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release -p hammer-bench --bin repro -- all
//! cargo run --release -p hammer-bench --bin repro -- fig8b fig9a --quick
//! ```
//!
//! Criterion benches (`cargo bench`) cover the Table 3 runtime scaling,
//! simulator throughput and the Hamming kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod ann_bench;
pub mod datasets;
pub mod experiments;
pub mod json;
pub mod kernel_bench;
pub mod obs_bench;
pub mod pipeline;
pub mod report;
pub mod serve_bench;
pub mod sim_bench;
pub mod stab_bench;
pub mod top;

//! The `repro bench-stab` measurement harness: noisy BV and GHZ
//! experiments at 64–128 qubits, run end-to-end on the stabilizer
//! engine — sampling through HAMMER reconstruction — emitting the
//! `BENCH_stab.json` artifact.
//!
//! These are the widths the paper's narrative targets ("machines with
//! hundreds of qubits") that the dense state-vector layer can never
//! reach: every row measures the tableau path at 2.5–5× the dense
//! engine's 24-qubit cap. Alongside wall-clock sampling throughput, the
//! rows record the figures of merit of the reproduced pipeline — PST
//! before and after reconstruction — so the artifact doubles as the
//! wide-register fidelity sweep.

use std::time::Instant;

use hammer_circuits::BernsteinVazirani;
use hammer_core::Hammer;
use hammer_dist::{metrics, BitString, Distribution};
use hammer_sim::{Circuit, DeviceModel, SimTuning, StabilizerEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0x57AB;

/// One measured wide-circuit experiment.
#[derive(Debug, Clone)]
pub struct StabBenchRow {
    /// Benchmark family: `bv` or `ghz`.
    pub family: &'static str,
    /// Full register width (for BV: data qubits + 1 ancilla).
    pub qubits: usize,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Monte-Carlo trials sampled.
    pub trials: u64,
    /// Distinct outcomes observed (the `N` of the `O(N²)` kernel).
    pub unique_outcomes: usize,
    /// Wall-clock seconds of `StabilizerEngine::sample`.
    pub secs_sample: f64,
    /// Wall-clock seconds of the HAMMER reconstruction that follows.
    pub secs_reconstruct: f64,
    /// Probability of a correct outcome before reconstruction.
    pub pst_before: f64,
    /// Probability of a correct outcome after reconstruction.
    pub pst_after: f64,
}

impl StabBenchRow {
    /// Sampling throughput in trials/second.
    #[must_use]
    pub fn trials_per_sec(&self) -> f64 {
        self.trials as f64 / self.secs_sample
    }

    /// PST improvement factor from reconstruction.
    #[must_use]
    pub fn pst_gain(&self) -> f64 {
        if self.pst_before > 0.0 {
            self.pst_after / self.pst_before
        } else {
            1.0
        }
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct StabBenchReport {
    /// Worker threads of the stabilizer engine's trial split.
    pub threads: usize,
    /// True when run with `--quick` (CI smoke: smaller sweep).
    pub quick: bool,
    /// One row per (family, width), BV first.
    pub rows: Vec<StabBenchRow>,
}

/// The deterministic wide BV key for a given data width: a mixed
/// pattern (not all-ones) so the oracle's CX fan-in is representative.
#[must_use]
pub fn wide_bv_key(data_bits: usize) -> BitString {
    let mut key = BitString::zeros(data_bits);
    for q in 0..data_bits {
        if q % 3 != 1 {
            key = key.flip_bit(q);
        }
    }
    key
}

/// One measured experiment: sample on the stabilizer engine, normalize,
/// reconstruct with HAMMER, and score PST against the correct set.
fn run_one(
    family: &'static str,
    circuit: &Circuit,
    device: &DeviceModel,
    correct: &[BitString],
    marginal: Option<&[usize]>,
    trials: u64,
) -> StabBenchRow {
    let engine = StabilizerEngine::new(device);
    let mut rng = StdRng::seed_from_u64(SEED ^ circuit.num_qubits() as u64);

    let start = Instant::now();
    let counts = engine
        .sample(circuit, trials, &mut rng)
        .expect("wide Clifford instance is simulable");
    let secs_sample = start.elapsed().as_secs_f64();
    assert_eq!(counts.total(), trials);

    let counts = match marginal {
        Some(qubits) => counts.marginal(qubits),
        None => counts,
    };
    let noisy: Distribution = counts.to_distribution();
    let pst_before = metrics::pst(&noisy, correct);

    let start = Instant::now();
    let recovered = Hammer::new().reconstruct(&noisy);
    let secs_reconstruct = start.elapsed().as_secs_f64();
    let pst_after = metrics::pst(&recovered, correct);

    StabBenchRow {
        family,
        qubits: circuit.num_qubits(),
        gates: circuit.gate_count(),
        trials,
        unique_outcomes: noisy.len(),
        secs_sample,
        secs_reconstruct,
        pst_before,
        pst_after,
    }
}

/// Runs the sweep. Quick mode covers the 64-qubit BV and GHZ rows with
/// a reduced trial budget (CI smoke); the full sweep spans 64–128
/// qubits for both families.
#[must_use]
pub fn run(quick: bool) -> StabBenchReport {
    // BV widths are *data* widths (the circuit adds an ancilla);
    // GHZ widths are full register widths.
    let (bv_widths, ghz_widths, trials): (&[usize], &[usize], u64) = if quick {
        (&[64], &[64], 1024)
    } else {
        (&[64, 96, 127], &[64, 96, 128], 8192)
    };

    let mut rows = Vec::new();
    for &w in bv_widths {
        let bench = BernsteinVazirani::new(wide_bv_key(w));
        let circuit = bench.circuit();
        let device = DeviceModel::google_sycamore(circuit.num_qubits());
        rows.push(run_one(
            "bv",
            &circuit,
            &device,
            &[bench.key()],
            Some(&bench.data_qubits()),
            trials,
        ));
        report_row(rows.last().expect("just pushed"));
    }
    for &w in ghz_widths {
        let circuit = hammer_circuits::ghz(w);
        let device = DeviceModel::google_sycamore(w);
        let correct = hammer_circuits::ghz_correct_outcomes(w);
        rows.push(run_one("ghz", &circuit, &device, &correct, None, trials));
        report_row(rows.last().expect("just pushed"));
    }
    StabBenchReport {
        threads: SimTuning::default().threads,
        quick,
        rows,
    }
}

fn report_row(r: &StabBenchRow) {
    eprintln!(
        "[bench-stab] {}-{}q × {} trials: sample {:.3} s ({:.0} trials/s), \
         reconstruct {:.3} s over {} unique, PST {:.4} → {:.4}",
        r.family,
        r.qubits,
        r.trials,
        r.secs_sample,
        r.trials_per_sec(),
        r.secs_reconstruct,
        r.unique_outcomes,
        r.pst_before,
        r.pst_after,
    );
}

impl StabBenchReport {
    /// Serializes the sweep as the `BENCH_stab.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"family\": \"{}\", \"qubits\": {}, \"gates\": {}, \"trials\": {}, \
                 \"unique_outcomes\": {}, \"secs_sample\": {:.6}, \"secs_reconstruct\": {:.6}, \
                 \"trials_per_sec\": {:.1}, \"pst_before\": {:.6}, \"pst_after\": {:.6}, \
                 \"pst_gain\": {:.3}, \"measured\": true}}",
                r.family,
                r.qubits,
                r.gates,
                r.trials,
                r.unique_outcomes,
                r.secs_sample,
                r.secs_reconstruct,
                r.trials_per_sec(),
                r.pst_before,
                r.pst_after,
                r.pst_gain(),
            ));
        }
        format!(
            "{{\n  \"artifact\": \"BENCH_stab\",\n  \
             \"description\": \"Noisy wide-register BV/GHZ experiments on the stabilizer \
             (Aaronson-Gottesman tableau) engine, end-to-end through HAMMER reconstruction. \
             Every cell is measured wall clock (not extrapolated) under the google_sycamore \
             noise preset; widths 64-128 sit far beyond the 24-qubit dense state-vector \
             cap.\",\n  \
             \"device\": \"google_sycamore\",\n  \"engine\": \"stabilizer\",\n  \
             \"threads\": {},\n  \"quick\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.threads, self.quick, rows,
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "family",
            "qubits",
            "gates",
            "trials",
            "unique",
            "sample (s)",
            "trials/s",
            "hammer (s)",
            "PST before",
            "PST after",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.family.to_string(),
                r.qubits.to_string(),
                r.gates.to_string(),
                r.trials.to_string(),
                r.unique_outcomes.to_string(),
                fnum(r.secs_sample, 3),
                fnum(r.trials_per_sec(), 0),
                fnum(r.secs_reconstruct, 3),
                fnum(r.pst_before, 4),
                fnum(r.pst_after, 4),
            ]);
        }
        format!(
            "\n=== bench-stab: wide-register stabilizer sweep (threads = {}) ===\n{table}",
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_and_serializes() {
        // The CI `bench-stab --quick` step covers benchmark scale; the
        // unit test drives the same measurement loop on one small-ish
        // instance to guard the plumbing.
        let bench = BernsteinVazirani::new(wide_bv_key(32));
        let circuit = bench.circuit();
        let device = DeviceModel::google_sycamore(33);
        let row = run_one(
            "bv",
            &circuit,
            &device,
            &[bench.key()],
            Some(&bench.data_qubits()),
            256,
        );
        assert_eq!(row.qubits, 33);
        assert!(row.secs_sample > 0.0);
        assert!(row.pst_after >= 0.0 && row.pst_after <= 1.0 + 1e-9);
        let report = StabBenchReport {
            threads: 4,
            quick: true,
            rows: vec![row],
        };
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_stab\""));
        assert!(json.contains("\"family\": \"bv\""));
        assert!(json.contains("\"measured\": true"));
        let text = report.render();
        assert!(text.contains("bench-stab") && text.contains("33"));
    }

    #[test]
    fn wide_bv_key_is_mixed_and_deterministic() {
        let a = wide_bv_key(64);
        let b = wide_bv_key(64);
        assert_eq!(a, b);
        assert!(a.weight() > 16 && a.weight() < 64, "weight {}", a.weight());
        assert_eq!(wide_bv_key(127).len(), 127);
    }
}

//! Shared execution pipelines: run a benchmark circuit on a simulated
//! device exactly the way the paper ran it on hardware (transpile →
//! execute trials → project to the logical register).

use hammer_circuits::BernsteinVazirani;
use hammer_dist::Distribution;
use hammer_sim::{
    transpile, Circuit, DeviceModel, NoiseEngine, PropagationEngine, SimError, TrajectoryEngine,
};
use rand::RngCore;

/// Which noise engine executes a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Clifford-propagation engine (scales to 20+ qubits).
    #[default]
    Propagation,
    /// Exact Monte-Carlo trajectories (≤ ~14 qubits).
    Trajectory,
}

impl Engine {
    /// Samples `circuit` on `device` for `trials` trials.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the engine.
    pub fn sample(
        self,
        device: &DeviceModel,
        circuit: &Circuit,
        trials: u64,
        rng: &mut dyn RngCore,
    ) -> Result<Distribution, SimError> {
        match self {
            Self::Propagation => {
                PropagationEngine::new(device).noisy_distribution(circuit, trials, rng)
            }
            Self::Trajectory => {
                TrajectoryEngine::new(device).noisy_distribution(circuit, trials, rng)
            }
        }
    }
}

/// Runs a circuit on a device with SWAP routing and returns the
/// *logical* output distribution.
///
/// # Errors
///
/// Propagates [`SimError`] from routing or execution.
pub fn run_routed(
    circuit: &Circuit,
    device: &DeviceModel,
    engine: Engine,
    trials: u64,
    rng: &mut dyn RngCore,
) -> Result<Distribution, SimError> {
    let routed = transpile(circuit, device.coupling())?;
    let physical = engine.sample(device, routed.circuit(), trials, rng)?;
    Ok(routed.logical_distribution(&physical))
}

/// Runs a Bernstein–Vazirani benchmark end to end and returns the
/// *data-register* distribution (ancilla marginalized out) — the noisy
/// histogram the paper's Figs. 1(a), 3(b), 7 and 8 start from.
///
/// # Errors
///
/// Propagates [`SimError`] from routing or execution.
pub fn run_bv(
    bench: &BernsteinVazirani,
    device: &DeviceModel,
    engine: Engine,
    trials: u64,
    rng: &mut dyn RngCore,
) -> Result<Distribution, SimError> {
    let logical = run_routed(&bench.circuit(), device, engine, trials, rng)?;
    Ok(logical.marginal(&bench.data_qubits()))
}

/// Ensemble of Diverse Mappings (EDM, Tannu & Qureshi MICRO '19 — the
/// related-work baseline of §8): run the same circuit under `k`
/// different initial layouts, splitting the trial budget evenly, and
/// merge the logical histograms. Different mappings route through
/// different couplers, so mapping-specific correlated errors average
/// out while the correct answer reinforces.
///
/// # Errors
///
/// Propagates [`SimError`] from routing or execution.
///
/// # Panics
///
/// Panics if `k` is zero or `trials < k`.
pub fn run_bv_edm(
    bench: &BernsteinVazirani,
    device: &DeviceModel,
    engine: Engine,
    trials: u64,
    k: usize,
    rng: &mut dyn RngCore,
) -> Result<Distribution, SimError> {
    assert!(k >= 1, "EDM needs at least one mapping");
    assert!(
        trials >= k as u64,
        "not enough trials to split across mappings"
    );
    let n_logical = bench.num_qubits();
    let n_physical = device.num_qubits();
    let per_mapping = trials / k as u64;
    // Equal trials per mapping → the ensemble distribution is the plain
    // average of the per-mapping distributions.
    let mut pairs: Vec<(hammer_dist::BitString, f64)> = Vec::new();
    for m in 0..k {
        // Rotate the logical register across the physical qubits.
        let layout: Vec<usize> = (0..n_logical).map(|q| (q + m) % n_physical).collect();
        let routed =
            hammer_sim::transpile_with_layout(&bench.circuit(), device.coupling(), &layout)?;
        let physical = engine.sample(device, routed.circuit(), per_mapping, rng)?;
        let logical = routed
            .logical_distribution(&physical)
            .marginal(&bench.data_qubits());
        pairs.extend(logical.iter());
    }
    Ok(Distribution::from_probs(bench.num_data_qubits(), pairs)
        .expect("ensemble has probability mass"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hammer_dist::{metrics, BitString};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bv_pipeline_recovers_key_under_light_noise() {
        let key = BitString::parse("10110").unwrap();
        let bench = BernsteinVazirani::new(key);
        let device = DeviceModel::ibm_casablanca(bench.num_qubits());
        let mut rng = StdRng::seed_from_u64(3);
        let dist = run_bv(&bench, &device, Engine::Propagation, 4096, &mut rng).unwrap();
        assert_eq!(dist.n_bits(), 5);
        let pst = metrics::pst(&dist, &[key]);
        assert!(pst > 0.3, "pst = {pst}");
        // Errors cluster near the key.
        assert!(metrics::ehd(&dist, &[key]) < 2.0);
    }

    #[test]
    fn both_engines_agree_on_shape() {
        let key = BitString::parse("1011").unwrap();
        let bench = BernsteinVazirani::new(key);
        let device = DeviceModel::ibm_paris(bench.num_qubits());
        let mut rng = StdRng::seed_from_u64(5);
        let prop = run_bv(&bench, &device, Engine::Propagation, 4096, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let traj = run_bv(&bench, &device, Engine::Trajectory, 4096, &mut rng).unwrap();
        let p1 = metrics::pst(&prop, &[key]);
        let p2 = metrics::pst(&traj, &[key]);
        assert!(
            (p1 - p2).abs() < 0.12,
            "propagation {p1} vs trajectory {p2}"
        );
    }

    #[test]
    fn edm_merges_mappings_and_preserves_width() {
        let key = BitString::parse("1101").unwrap();
        let bench = BernsteinVazirani::new(key);
        let device = DeviceModel::ibm_paris(bench.num_qubits() + 2);
        let mut rng = StdRng::seed_from_u64(23);
        let dist = run_bv_edm(&bench, &device, Engine::Propagation, 4096, 4, &mut rng).unwrap();
        assert_eq!(dist.n_bits(), 4);
        assert!((dist.total_mass() - 1.0).abs() < 1e-9);
        assert!(metrics::pst(&dist, &[key]) > 0.1);
    }

    #[test]
    fn noiseless_device_gives_pure_key() {
        let key = BitString::parse("110").unwrap();
        let bench = BernsteinVazirani::new(key);
        let device = DeviceModel::noiseless(bench.num_qubits());
        let mut rng = StdRng::seed_from_u64(7);
        let dist = run_bv(&bench, &device, Engine::Trajectory, 512, &mut rng).unwrap();
        assert!((dist.prob(key) - 1.0).abs() < 1e-9);
    }
}

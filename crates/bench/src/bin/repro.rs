//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick] [--jobs N]
//! repro fig8b fig9a table3 [--quick]
//! repro bench-kernel [--quick] [--out PATH]
//! repro bench-sim [--quick] [--out PATH]
//! repro bench-stab [--quick] [--out PATH]
//! repro bench-ann [--quick] [--out PATH]
//! repro chaos-smoke [--quick]
//! repro persist-smoke [--quick]
//! repro --list
//! ```
//!
//! `repro all` runs independent experiment instances concurrently:
//! `--jobs N` sets the worker count. The default divides the cores by
//! the trajectory engine's own per-experiment thread count so the two
//! levels of parallelism multiply out to roughly the machine, not its
//! square. Reports are printed in experiment order regardless of
//! completion order.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hammer_bench::{
    ann_bench, experiments, kernel_bench, obs_bench, serve_bench, sim_bench, stab_bench,
};

/// Runs one of the JSON-artifact bench subcommands and writes its
/// output file.
fn run_bench_artifact(name: &str, quick: bool, out_path: &str) -> ExitCode {
    let (rendered, json) = match name {
        "bench-kernel" => {
            let report = kernel_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-sim" => {
            let report = sim_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-stab" => {
            let report = stab_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-serve" => {
            let report = serve_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-ann" => {
            let report = ann_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-obs" => {
            let report = obs_bench::run(quick);
            (report.render(), report.to_json())
        }
        other => unreachable!("unknown bench subcommand {other}"),
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[{name} wrote {out_path}]");
    ExitCode::SUCCESS
}

/// One digest line shared by the periodic `--stats-every` ticker and
/// the final shutdown report: the legacy counters, plus latency
/// quantiles and gauges from the metric registry when `--obs` is on.
/// Both paths read the same snapshot types, so the numbers an operator
/// tails are the numbers `MetricsSnapshot` serves over the wire.
fn digest_line(
    stats: &hammer_serve::ServeStats,
    obs: Option<&hammer_obs::MetricsSnapshot>,
) -> String {
    let mut line = format!(
        "{} requests ({} hits, {} misses, {} coalesced, {} busy, {} spills, {} loads)",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.coalesced,
        stats.busy_rejections,
        stats.store_spills,
        stats.store_loads,
    );
    if let Some(snap) = obs {
        if let Some(h) = snap.histogram("serve.request_ns") {
            line.push_str(&format!(
                "; request p50/p95/p99 {:.2}/{:.2}/{:.2} ms",
                h.quantile(0.50) as f64 / 1e6,
                h.quantile(0.95) as f64 / 1e6,
                h.quantile(0.99) as f64 / 1e6,
            ));
        }
        if let Some(entries) = snap.gauge("serve.cache.entries") {
            line.push_str(&format!("; cache {entries} entries"));
        }
        if let Some(conns) = snap.gauge("serve.connections") {
            line.push_str(&format!(", {conns} conns"));
        }
    }
    line
}

/// `repro serve [--addr A] [--workers N] [--cache-mb MB]
/// [--store-dir D] [--store-mb MB] [--store-fault KIND:N]
/// [--obs] [--stats-every SECS] [--metrics-addr A] [--rollup-ms N]
/// [--slo SPEC]...`: run the serving subsystem in the foreground until
/// a client sends `Shutdown`.
///
/// `--metrics-addr` binds the HTTP exposition listener (`/metrics`,
/// `/series`, `/events`, `/slo`, `/healthz`) on a second port;
/// `--rollup-ms` sets the rollup window the roller ticks at (default
/// 1000); `--slo` declares an objective
/// (`latency:NAME:SERIES:THRESH:PCT:WINDOW` or
/// `avail:NAME:BAD:TOTAL:PCT:WINDOW`) and may repeat.
///
/// `--stats-every SECS` prints a periodic stats digest; `--obs` widens
/// it (and the final shutdown line) with registry latency quantiles,
/// defaulting the period to 30 s if `--stats-every` is absent.
///
/// `--store-fault` arms a crash-injection point for the persist-smoke
/// drill: `append:N` aborts mid-way through the Nth store append
/// (leaving a torn record), `fsync:N` aborts after the Nth record is
/// written but before its fsync commit point, and `recovery:N` aborts
/// during the Nth torn-tail truncation of startup recovery.
fn run_serve(args: &[String]) -> ExitCode {
    /// `--flag N` as a usize, with a readable failure.
    fn usize_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
        match flag_value(args, flag)? {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("{flag} requires a non-negative integer, got {v}")),
        }
    }
    let mut config = hammer_serve::ServeConfig::default();
    let parsed = usize_flag(args, "--workers")
        .map(|v| {
            if let Some(n) = v {
                config.workers = n;
            }
        })
        .and_then(|()| usize_flag(args, "--cache-mb"))
        .map(|v| {
            if let Some(n) = v {
                config.cache_mb = n;
            }
        })
        .and_then(|()| usize_flag(args, "--store-mb"))
        .map(|v| {
            if let Some(n) = v {
                config.store_mb = n;
            }
        })
        .and_then(|()| flag_value(args, "--store-dir"))
        .map(|v| {
            if let Some(dir) = v {
                config.store_dir = Some(std::path::PathBuf::from(dir));
            }
        })
        .and_then(|()| flag_value(args, "--metrics-addr"))
        .map(|v| {
            if let Some(addr) = v {
                config.metrics_addr = Some(addr.to_owned());
            }
        })
        .and_then(|()| usize_flag(args, "--rollup-ms"))
        .map(|v| {
            if let Some(ms) = v {
                config.rollup_window_ms = ms as u64;
            }
        })
        .and_then(|()| flag_value(args, "--addr").map(|v| v.map(String::from)));
    match parsed {
        Ok(Some(addr)) => config.addr = addr,
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    // `--slo SPEC` is repeatable: collect every occurrence.
    for (i, arg) in args.iter().enumerate() {
        if arg == "--slo" {
            let Some(spec) = args.get(i + 1).filter(|v| !v.starts_with("--")) else {
                eprintln!("--slo requires a value argument");
                return ExitCode::FAILURE;
            };
            match hammer_obs::SloSpec::parse(spec) {
                Ok(slo) => config.slos.push(slo),
                Err(e) => {
                    eprintln!("--slo {spec}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let obs_digest = args.iter().any(|a| a == "--obs");
    let stats_every = match usize_flag(args, "--stats-every") {
        Ok(v) => v.unwrap_or(if obs_digest { 30 } else { 0 }),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Fault points must be armed before `serve` opens the store: the
    // recovery fault fires during that open.
    match flag_value(args, "--store-fault") {
        Ok(None) => {}
        Ok(Some(spec)) => {
            let parsed = spec
                .split_once(':')
                .and_then(|(kind, n)| n.parse::<u64>().ok().map(|n| (kind, n)));
            match parsed {
                Some(("append", n)) => hammer_serve::fault::arm_abort_on_nth_store_append(n),
                Some(("fsync", n)) => hammer_serve::fault::arm_abort_on_nth_store_fsync(n),
                Some(("recovery", n)) => {
                    hammer_serve::fault::arm_abort_on_nth_recovery_truncate(n);
                }
                _ => {
                    eprintln!("--store-fault requires append:N, fsync:N or recovery:N, got {spec}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let server = match hammer_serve::serve(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[serve] listening on {} ({} workers, {} MiB cache{}); send Shutdown to stop",
        server.local_addr(),
        config.workers,
        config.cache_mb,
        config
            .store_dir
            .as_ref()
            .map(|d| format!(", store {} @ {} MiB", d.display(), config.store_mb))
            .unwrap_or_default(),
    );
    if let Some(addr) = server.metrics_addr() {
        eprintln!(
            "[serve] metrics exposition on http://{addr} (/metrics /series /events /slo /healthz)"
        );
    }
    let observer = server.observer();
    let ticker = (stats_every > 0).then(|| {
        let observer = observer.clone();
        std::thread::spawn(move || {
            let period = std::time::Duration::from_secs(stats_every as u64);
            let mut next = std::time::Instant::now() + period;
            while !observer.is_shut_down() {
                std::thread::sleep(std::time::Duration::from_millis(200));
                if std::time::Instant::now() >= next {
                    next += period;
                    let stats = observer.stats();
                    let snap = obs_digest.then(|| observer.obs_snapshot());
                    eprintln!("[serve] {}", digest_line(&stats, snap.as_ref()));
                }
            }
        })
    });
    let stats = server.wait();
    let snap = obs_digest.then(|| observer.obs_snapshot());
    eprintln!(
        "[serve] shut down after {}",
        digest_line(&stats, snap.as_ref())
    );
    if let Some(t) = ticker {
        let _ = t.join();
    }
    ExitCode::SUCCESS
}

/// `repro top [--addr A] [--binary] [--once] [--interval-ms N]
/// [--frames N]`: live terminal dashboard over a running server's
/// exposition endpoints (`--addr` is the `--metrics-addr` port), or
/// over the binary protocol with `--binary` (then `--addr` is the
/// serving port). `--once` prints a single frame and exits.
fn run_top(args: &[String]) -> ExitCode {
    let mut config = hammer_bench::top::TopConfig {
        once: args.iter().any(|a| a == "--once"),
        binary: args.iter().any(|a| a == "--binary"),
        ..hammer_bench::top::TopConfig::default()
    };
    let parsed = flag_value(args, "--addr")
        .map(|v| {
            if let Some(addr) = v {
                config.addr = addr.to_owned();
            }
        })
        .and_then(|()| flag_value(args, "--interval-ms"))
        .and_then(|v| match v {
            None => Ok(()),
            Some(v) => v
                .parse::<u64>()
                .map(|ms| config.interval_ms = ms)
                .map_err(|_| format!("--interval-ms requires an integer, got {v}")),
        })
        .and_then(|()| flag_value(args, "--frames"))
        .and_then(|v| match v {
            None => Ok(()),
            Some(v) => v
                .parse::<u64>()
                .map(|n| config.max_frames = Some(n))
                .map_err(|_| format!("--frames requires an integer, got {v}")),
        });
    if let Err(e) = parsed {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let mut stdout = std::io::stdout();
    match hammer_bench::top::run(&config, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("top: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro serve-smoke [--addr A] [--shutdown]`: one client round trip —
/// Ping, a small Reconstruct (checked against the direct library
/// call), Stats, and optionally Shutdown. The CI workflow runs this
/// against a backgrounded `repro serve`.
fn run_serve_smoke(args: &[String]) -> ExitCode {
    use hammer_dist::BitString;
    let addr = match flag_value(args, "--addr") {
        Ok(addr) => addr.unwrap_or("127.0.0.1:7878").to_string(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match hammer_serve::ServeClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("serve-smoke: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |what: &str, e: hammer_serve::WireError| {
        eprintln!("serve-smoke: {what} failed: {e}");
        ExitCode::FAILURE
    };
    if let Err(e) = client.ping() {
        return fail("ping", e);
    }
    let mut counts = hammer_dist::Counts::new(5).expect("valid width");
    let bs = |s: &str| BitString::parse(s).expect("valid literal");
    counts.record_n(bs("11111"), 150);
    counts.record_n(bs("00100"), 250);
    for s in ["11110", "11101", "11011", "10111", "01111"] {
        counts.record_n(bs(s), 80);
    }
    let config = hammer_core::HammerConfig::paper();
    let served = match client.reconstruct(&counts, &config) {
        Ok(d) => d,
        Err(e) => return fail("reconstruct", e),
    };
    let direct = hammer_core::Hammer::with_config(config).reconstruct_counts(&counts);
    if served != direct {
        eprintln!("serve-smoke: served reconstruction differs from the direct library call");
        return ExitCode::FAILURE;
    }
    let stats = match client.stats() {
        Ok(stats) => stats,
        Err(e) => return fail("stats", e),
    };
    eprintln!(
        "[serve-smoke] ok: ping + reconstruct round-tripped; server stats: {} requests, \
         {} hits, {} misses",
        stats.requests, stats.cache_hits, stats.cache_misses,
    );
    if args.iter().any(|a| a == "--shutdown") {
        if let Err(e) = client.shutdown() {
            return fail("shutdown", e);
        }
        eprintln!("[serve-smoke] shutdown acknowledged");
    }
    ExitCode::SUCCESS
}

/// `repro chaos-smoke [--quick]`: an in-process robustness drill. Boots
/// a server on an ephemeral port, drives reconstructions through a
/// [`hammer_serve::chaos::ChaosProxy`] under each fault class, checks
/// that every completed reply is byte-identical to the direct library
/// call, exercises the deadline path against an artificially slowed
/// compute, and verifies shutdown stays bounded. `--quick` runs one
/// pass over the fault matrix instead of three.
fn run_chaos_smoke(args: &[String]) -> ExitCode {
    use hammer_serve::chaos::{ChaosProxy, Fault};
    use hammer_serve::WireError;
    use std::time::{Duration, Instant};

    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 1 } else { 3 };

    let server = match hammer_serve::serve(&hammer_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_mb: 16,
        io_timeout: Some(Duration::from_millis(400)),
        ..hammer_serve::ServeConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("chaos-smoke: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut counts = hammer_dist::Counts::new(6).expect("valid width");
    let bs = |s: &str| hammer_dist::BitString::parse(s).expect("valid literal");
    counts.record_n(bs("111111"), 400);
    counts.record_n(bs("001000"), 220);
    for s in ["111110", "111101", "111011", "110111", "101111", "011111"] {
        counts.record_n(bs(s), 70);
    }
    let config = hammer_core::HammerConfig::paper();
    let direct = hammer_core::Hammer::with_config(config).reconstruct_counts(&counts);

    // Fault matrix: completed replies must be byte-identical; failures
    // must be typed errors, promptly. Never a hang, never a wrong answer.
    let faults = [
        Fault::None,
        Fault::DelayMs(5),
        Fault::CorruptRequestByte(2),
        Fault::DropRequestAfter(8),
        Fault::TruncateReplyAfter(10),
        Fault::HalfCloseRequestAfter(6),
    ];
    let (mut completed, mut refused) = (0usize, 0usize);
    for round in 0..rounds {
        for fault in faults {
            let proxy = match ChaosProxy::spawn(server.local_addr(), vec![fault]) {
                Ok(proxy) => proxy,
                Err(e) => {
                    eprintln!("chaos-smoke: proxy spawn failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let started = Instant::now();
            let result = hammer_serve::ServeClient::connect(proxy.local_addr().to_string())
                .map(|c| {
                    c.with_io_timeout(Some(Duration::from_millis(700)))
                        .with_busy_retries(0, Duration::ZERO)
                })
                .ok()
                .map(|mut client| client.reconstruct(&counts, &config));
            match result {
                Some(Ok(got)) if got == direct => completed += 1,
                Some(Ok(_)) => {
                    eprintln!("chaos-smoke: CORRUPTED reply under {fault:?} (round {round})");
                    return ExitCode::FAILURE;
                }
                Some(Err(_)) | None => refused += 1,
            }
            if started.elapsed() > Duration::from_secs(5) {
                eprintln!(
                    "chaos-smoke: fault {fault:?} stalled for {:?}",
                    started.elapsed()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "[chaos-smoke] fault matrix: {completed} byte-identical completions, \
         {refused} typed refusals, 0 corruptions, 0 hangs"
    );

    // Deadline drill: a 120 ms budget against a compute slowed to 1.2 s
    // must come back DeadlineExceeded fast. Fresh counts — the fault
    // matrix already cached `counts`, and cache hits skip the compute.
    let mut fresh = counts.clone();
    fresh.record_n(bs("010101"), 33);
    hammer_serve::fault::set_slow_compute_ms(1200);
    let deadline_ok = (|| {
        let mut client = hammer_serve::ServeClient::connect(server.local_addr().to_string())
            .ok()?
            .with_deadline(Some(Duration::from_millis(120)));
        let started = Instant::now();
        let outcome = client.reconstruct(&fresh, &config);
        let elapsed = started.elapsed();
        matches!(outcome, Err(WireError::DeadlineExceeded))
            .then_some(elapsed < Duration::from_millis(800))?
            .then_some(())
    })();
    hammer_serve::fault::reset();
    if deadline_ok.is_none() {
        eprintln!("chaos-smoke: deadline drill failed (no prompt DeadlineExceeded)");
        return ExitCode::FAILURE;
    }
    eprintln!("[chaos-smoke] deadline drill: slow compute cut short with DeadlineExceeded");

    // Bounded shutdown: the drain must finish within a watchdog budget.
    server.shutdown();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(server.wait());
    });
    match done_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(stats) => {
            eprintln!(
                "[chaos-smoke] ok: bounded shutdown after {} requests ({} busy rejections)",
                stats.requests, stats.busy_rejections
            );
            ExitCode::SUCCESS
        }
        Err(_) => {
            eprintln!("chaos-smoke: shutdown exceeded the 10 s watchdog");
            ExitCode::FAILURE
        }
    }
}

/// `repro persist-smoke [--quick]`: the crash drill for the persistent
/// distribution store, run against real `repro serve` subprocesses over
/// a shared store directory:
///
/// 1. **kill -9**: populate a store-backed server past its cache
///    budget (every eviction spills, fsync'd), SIGKILL it, restart over
///    the same directory, and assert every reply is byte-identical to
///    the pre-crash reply, with the spilled majority served from the
///    store (not recomputed).
/// 2. **torn write**: a fault point aborts the process between a
///    record's header and body; the restart must truncate the torn
///    tail (visible as `store_corrupt_dropped` in `Stats`), keep every
///    committed record, and serve byte-identical replies.
/// 3. **pre-fsync crash**: abort after a record's write but before its
///    fsync commit point; the restart must come up clean either way —
///    fsync is a durability floor, not a ceiling.
/// 4. **double crash**: abort *during recovery* (right after the
///    torn-tail truncation); a further restart must converge to a
///    healthy store.
///
/// `--quick` shrinks the kill -9 hot set.
fn run_persist_smoke(args: &[String]) -> ExitCode {
    /// Deterministic, sizable request content: 1750 distinct 16-bit
    /// outcomes reconstruct to a ~70 KB cache entry — larger than the
    /// 1 MiB cache's 64 KiB shard budget, so every same-shard collision
    /// evicts (and therefore spills) deterministically. The salt varies
    /// the counts, giving each key a distinct fingerprint and a
    /// distinct distribution.
    fn smoke_counts(salt: u64) -> hammer_dist::Counts {
        let mut counts = hammer_dist::Counts::new(16).expect("valid width");
        for i in 0..1750u64 {
            counts.record_n(
                hammer_dist::BitString::new(i, 16),
                1 + (salt + 1) * (i % 97 + 1),
            );
        }
        counts
    }

    /// Boots a `repro serve` child over `dir` (1 MiB cache, store
    /// attached, optional crash fault armed) and parses its bound
    /// address off stderr. `None` address = the child died before
    /// listening, the expected outcome for a recovery-fault child.
    fn spawn_store_server(
        dir: &std::path::Path,
        fault: Option<&str>,
    ) -> Result<(std::process::Child, Option<String>), String> {
        use std::io::BufRead;
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let mut cmd = std::process::Command::new(exe);
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache-mb",
            "1",
            "--store-mb",
            "64",
            "--store-dir",
        ])
        .arg(dir)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
        if let Some(spec) = fault {
            cmd.args(["--store-fault", spec]);
        }
        let mut child = cmd.spawn().map_err(|e| format!("spawn serve child: {e}"))?;
        let stderr = child.stderr.take().expect("stderr piped");
        let mut reader = std::io::BufReader::new(stderr);
        let mut addr = None;
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if let Some(rest) = line.split("listening on ").nth(1) {
                        addr = rest.split_whitespace().next().map(str::to_string);
                        break;
                    }
                }
            }
        }
        // Keep draining in the background so the child can never block
        // on a full stderr pipe.
        std::thread::spawn(move || {
            let _ = std::io::copy(&mut reader, &mut std::io::sink());
        });
        Ok((child, addr))
    }

    /// Issues one Reconstruct per salt and returns the canonical wire
    /// encoding of each reply — the byte-identity currency of the
    /// drill. `None` entries mark requests after the child died (the
    /// expected end of a crash-fault phase).
    fn drive(addr: &str, salts: &[u64]) -> Vec<Option<Vec<u8>>> {
        let config = hammer_core::HammerConfig::paper();
        let Ok(mut client) = hammer_serve::ServeClient::connect(addr) else {
            return salts.iter().map(|_| None).collect();
        };
        let mut out = Vec::new();
        for &salt in salts {
            if out.last().is_some_and(Option::is_none) {
                out.push(None); // child already dead; stop hammering
                continue;
            }
            match client.reconstruct(&smoke_counts(salt), &config) {
                Ok(d) => {
                    let mut bytes = Vec::new();
                    hammer_serve::codec::put_distribution(&mut bytes, &d);
                    out.push(Some(bytes));
                }
                Err(_) => out.push(None),
            }
        }
        out
    }

    /// Waits (bounded) for a child to exit.
    fn wait_exit(child: &mut std::process::Child, what: &str) -> Result<(), String> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            match child.try_wait() {
                Ok(Some(_)) => return Ok(()),
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Ok(None) => {
                    let _ = child.kill();
                    return Err(format!("{what}: child did not exit within 30 s"));
                }
                Err(e) => return Err(format!("{what}: {e}")),
            }
        }
    }

    /// Asks a running child for its `Stats`, then shuts it down
    /// gracefully.
    fn stats_and_shutdown(
        addr: &str,
        child: &mut std::process::Child,
        what: &str,
    ) -> Result<hammer_serve::ServeStats, String> {
        let mut client = hammer_serve::ServeClient::connect(addr)
            .map_err(|e| format!("{what}: stats connect: {e}"))?;
        let stats = client.stats().map_err(|e| format!("{what}: stats: {e}"))?;
        client
            .shutdown()
            .map_err(|e| format!("{what}: shutdown: {e}"))?;
        wait_exit(child, what)?;
        Ok(stats)
    }

    let quick = args.iter().any(|a| a == "--quick");
    let hot_set: u64 = if quick { 24 } else { 40 };
    let root = std::env::temp_dir().join(format!("hammer-persist-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let outcome = (|| -> Result<(), String> {
        // ---- Drill 1: kill -9, restart, byte-identical warm serve ----
        let dir = root.join("kill9");
        let salts: Vec<u64> = (0..hot_set).collect();
        let (mut child, addr) = spawn_store_server(&dir, None)?;
        let addr = addr.ok_or("kill -9 drill: server did not come up")?;
        let before = drive(&addr, &salts);
        if before.iter().any(Option::is_none) {
            return Err("kill -9 drill: a populate request failed".into());
        }
        child.kill().map_err(|e| format!("kill: {e}"))?;
        let _ = child.wait();

        let (mut child, addr) = spawn_store_server(&dir, None)?;
        let addr = addr.ok_or("kill -9 drill: restart did not come up")?;
        let after = drive(&addr, &salts);
        for (salt, (a, b)) in salts.iter().zip(before.iter().zip(&after)) {
            if b.is_none() || a != b {
                return Err(format!(
                    "kill -9 drill: reply for salt {salt} not byte-identical after restart"
                ));
            }
        }
        let stats = stats_and_shutdown(&addr, &mut child, "kill -9 drill")?;
        // At most one entry per 16 shards was resident (and lost) at
        // the kill; everything else had been spilled and fsync'd.
        let floor = hot_set - 16;
        if stats.store_recovered < floor {
            return Err(format!(
                "kill -9 drill: recovered {} records, expected >= {floor}",
                stats.store_recovered
            ));
        }
        if stats.store_loads < floor {
            return Err(format!(
                "kill -9 drill: only {} store loads, expected >= {floor}",
                stats.store_loads
            ));
        }
        if stats.cache_misses > 16 {
            return Err(format!(
                "kill -9 drill: {} recomputes after restart, expected <= 16",
                stats.cache_misses
            ));
        }
        eprintln!(
            "[persist-smoke] kill -9: {} replies byte-identical after restart \
             ({} recovered, {} store loads, {} recomputes)",
            hot_set, stats.store_recovered, stats.store_loads, stats.cache_misses
        );

        // ---- Drills 2 + 3: abort mid-append / before fsync ----
        for (spec, expect_torn) in [("append:2", true), ("fsync:2", false)] {
            let dir = root.join(spec.replace(':', "-"));
            let salts: Vec<u64> = (100..148).collect();
            let (mut child, addr) = spawn_store_server(&dir, Some(spec))?;
            let addr = addr.ok_or(format!("{spec} drill: server did not come up"))?;
            let before = drive(&addr, &salts);
            if before.iter().all(Option::is_some) {
                return Err(format!("{spec} drill: fault never fired in 48 requests"));
            }
            wait_exit(&mut child, spec)?;

            let (mut child, addr) = spawn_store_server(&dir, None)?;
            let addr = addr.ok_or(format!("{spec} drill: restart did not come up"))?;
            let survivors: Vec<u64> = salts
                .iter()
                .zip(&before)
                .filter(|(_, r)| r.is_some())
                .map(|(&s, _)| s)
                .collect();
            let after = drive(&addr, &survivors);
            let matched = survivors
                .iter()
                .zip(&after)
                .all(|(&s, b)| b.as_deref() == before[(s - 100) as usize].as_deref());
            if !matched {
                return Err(format!("{spec} drill: a reply changed across the crash"));
            }
            let stats = stats_and_shutdown(&addr, &mut child, spec)?;
            if expect_torn && stats.store_corrupt_dropped == 0 {
                return Err(format!(
                    "{spec} drill: expected a torn tail in store_corrupt_dropped"
                ));
            }
            eprintln!(
                "[persist-smoke] {spec}: {} pre-crash replies stable across restart \
                 ({} recovered, {} corrupt dropped)",
                survivors.len(),
                stats.store_recovered,
                stats.store_corrupt_dropped
            );
        }

        // ---- Drill 4: crash during recovery, then converge ----
        let dir = root.join("double-crash");
        let salts: Vec<u64> = (200..248).collect();
        let (mut child, addr) = spawn_store_server(&dir, Some("append:2"))?;
        let addr = addr.ok_or("double-crash drill: server did not come up")?;
        let before = drive(&addr, &salts);
        if before.iter().all(Option::is_some) {
            return Err("double-crash drill: fault never fired in 48 requests".into());
        }
        wait_exit(&mut child, "double-crash drill (first crash)")?;
        // Second crash: abort during recovery's torn-tail truncation.
        let (mut child, addr) = spawn_store_server(&dir, Some("recovery:1"))?;
        if addr.is_some() {
            let _ = child.kill();
            return Err("double-crash drill: recovery fault never fired".into());
        }
        wait_exit(&mut child, "double-crash drill (crash during recovery)")?;
        // Third start: must converge to a healthy store.
        let (mut child, addr) = spawn_store_server(&dir, None)?;
        let addr = addr.ok_or("double-crash drill: store did not converge")?;
        let survivors: Vec<u64> = salts
            .iter()
            .zip(&before)
            .filter(|(_, r)| r.is_some())
            .map(|(&s, _)| s)
            .collect();
        let after = drive(&addr, &survivors);
        let matched = survivors
            .iter()
            .zip(&after)
            .all(|(&s, b)| b.as_deref() == before[(s - 200) as usize].as_deref());
        if !matched {
            return Err("double-crash drill: a reply changed across the crashes".into());
        }
        let stats = stats_and_shutdown(&addr, &mut child, "double-crash drill")?;
        eprintln!(
            "[persist-smoke] double crash: converged after crash-during-recovery \
             ({} recovered, {} replies stable)",
            stats.store_recovered,
            survivors.len()
        );
        Ok(())
    })();

    let _ = std::fs::remove_dir_all(&root);
    match outcome {
        Ok(()) => {
            eprintln!("[persist-smoke] ok: committed records survive kill -9, torn tails drop, recovery converges");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("persist-smoke: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the value following a `--flag` argument.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.as_str())),
            _ => Err(format!("{flag} requires a value argument")),
        },
    }
}

/// Runs `ids` across `jobs` workers (work-stealing over an atomic
/// cursor), printing each report in id order as soon as it and all its
/// predecessors are done.
fn run_experiments(ids: &[&str], quick: bool, jobs: usize) -> bool {
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Option<String>>>> =
        ids.iter().map(|_| Mutex::new(None)).collect();
    let jobs = jobs.clamp(1, ids.len().max(1));
    let any_failed = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&id) = ids.get(i) else { break };
                let start = std::time::Instant::now();
                // Catch per-experiment panics: an unfilled result slot
                // would leave the ordered printer below waiting
                // forever, hanging the whole run instead of failing it.
                let report = match std::panic::catch_unwind(|| experiments::run(id, quick)) {
                    Ok(Some(text)) => {
                        eprintln!("[{id} finished in {:.1}s]", start.elapsed().as_secs_f64());
                        Some(text)
                    }
                    Ok(None) => {
                        eprintln!("unknown experiment id: {id} (try --list)");
                        any_failed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Err(_) => {
                        eprintln!("[{id} panicked]");
                        any_failed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                };
                *results[i].lock().expect("no poisoned result slot") = Some(report);
            });
        }
        // The main thread is the ordered printer: emit report i as soon
        // as every report before it has been emitted.
        for slot in &results {
            loop {
                if let Some(report) = slot.lock().expect("no poisoned result slot").take() {
                    if let Some(text) = report {
                        println!("{text}");
                    }
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    })
    .expect("experiment worker does not panic");
    any_failed.load(Ordering::Relaxed) > 0
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <experiment-id>... | all [--quick] [--jobs N]");
        eprintln!("       repro bench-kernel [--quick] [--out PATH]");
        eprintln!("       repro bench-sim [--quick] [--out PATH]");
        eprintln!("       repro bench-stab [--quick] [--out PATH]");
        eprintln!("       repro bench-serve [--quick] [--out PATH]");
        eprintln!("       repro bench-ann [--quick] [--out PATH]");
        eprintln!("       repro bench-obs [--quick] [--out PATH]");
        eprintln!("       repro serve [--addr A] [--workers N] [--cache-mb MB]");
        eprintln!("                   [--store-dir D] [--store-mb MB] [--store-fault SPEC]");
        eprintln!("                   [--obs] [--stats-every SECS]");
        eprintln!("                   [--metrics-addr A] [--rollup-ms N] [--slo SPEC]...");
        eprintln!("       repro top [--addr A] [--binary] [--once] [--interval-ms N]");
        eprintln!("       repro serve-smoke [--addr A] [--shutdown]");
        eprintln!("       repro chaos-smoke [--quick]");
        eprintln!("       repro persist-smoke [--quick]");
        eprintln!("       repro --list");
        return ExitCode::FAILURE;
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return run_top(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-smoke") {
        return run_serve_smoke(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos-smoke") {
        return run_chaos_smoke(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("persist-smoke") {
        return run_persist_smoke(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bench) = args.iter().find(|a| {
        matches!(
            a.as_str(),
            "bench-kernel" | "bench-sim" | "bench-stab" | "bench-serve" | "bench-ann" | "bench-obs"
        )
    }) {
        let out_value = match flag_value(&args, "--out") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let default_out = match bench.as_str() {
            "bench-kernel" => "BENCH_kernel.json",
            "bench-sim" => "BENCH_sim.json",
            "bench-serve" => "BENCH_serve.json",
            "bench-ann" => "BENCH_ann.json",
            "bench-obs" => "BENCH_obs.json",
            _ => "BENCH_stab.json",
        };
        // Refuse to silently drop experiment ids passed alongside the
        // subcommand (the out path itself is not an id).
        let stray: Vec<&str> = args
            .iter()
            .filter(|a| {
                !a.starts_with("--") && a.as_str() != bench && Some(a.as_str()) != out_value
            })
            .map(String::as_str)
            .collect();
        if !stray.is_empty() {
            eprintln!(
                "{bench} cannot be combined with experiment ids (got: {})",
                stray.join(", ")
            );
            return ExitCode::FAILURE;
        }
        return run_bench_artifact(bench, quick, out_value.unwrap_or(default_out));
    }
    let jobs = match flag_value(&args, "--jobs") {
        Ok(None) => {
            // Each experiment's TrajectoryEngine already fans its trial
            // budget out over SimTuning::default().threads workers;
            // divide that out so jobs × engine-threads ≈ cores instead
            // of cores².
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            (cores / hammer_sim::SimTuning::default().threads).max(1)
        }
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(j) if j >= 1 => j,
            _ => {
                eprintln!("--jobs requires a positive integer, got {v}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs_value = flag_value(&args, "--jobs").expect("validated above");
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--") && Some(a.as_str()) != jobs_value)
            .map(String::as_str)
            .collect()
    };
    if run_experiments(&ids, quick, jobs) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

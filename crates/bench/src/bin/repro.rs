//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick]
//! repro fig8b fig9a table3 [--quick]
//! repro bench-kernel [--quick] [--out PATH]
//! repro --list
//! ```

use std::process::ExitCode;

use hammer_bench::{experiments, kernel_bench};

/// Runs the kernel sweep and writes the `BENCH_kernel.json` artifact.
fn bench_kernel(quick: bool, out_path: &str) -> ExitCode {
    let report = kernel_bench::run(quick);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[bench-kernel wrote {out_path}]");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <experiment-id>... | all [--quick]");
        eprintln!("       repro bench-kernel [--quick] [--out PATH]");
        eprintln!("       repro --list");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "bench-kernel") {
        let out_pos = args.iter().position(|a| a == "--out");
        let out_path = match out_pos {
            Some(i) => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.as_str(),
                _ => {
                    eprintln!("--out requires a path argument");
                    return ExitCode::FAILURE;
                }
            },
            None => "BENCH_kernel.json",
        };
        // Refuse to silently drop experiment ids passed alongside the
        // subcommand (the out path itself is not an id).
        let stray: Vec<&str> = args
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--")
                    && a.as_str() != "bench-kernel"
                    && Some(*i) != out_pos.map(|p| p + 1)
            })
            .map(|(_, a)| a.as_str())
            .collect();
        if !stray.is_empty() {
            eprintln!(
                "bench-kernel cannot be combined with experiment ids (got: {})",
                stray.join(", ")
            );
            return ExitCode::FAILURE;
        }
        return bench_kernel(quick, out_path);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect()
    };
    let mut failed = false;
    for id in ids {
        let start = std::time::Instant::now();
        match experiments::run(id, quick) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{id} finished in {:.1}s]", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

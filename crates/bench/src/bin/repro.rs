//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick] [--jobs N]
//! repro fig8b fig9a table3 [--quick]
//! repro bench-kernel [--quick] [--out PATH]
//! repro bench-sim [--quick] [--out PATH]
//! repro bench-stab [--quick] [--out PATH]
//! repro bench-ann [--quick] [--out PATH]
//! repro chaos-smoke [--quick]
//! repro --list
//! ```
//!
//! `repro all` runs independent experiment instances concurrently:
//! `--jobs N` sets the worker count. The default divides the cores by
//! the trajectory engine's own per-experiment thread count so the two
//! levels of parallelism multiply out to roughly the machine, not its
//! square. Reports are printed in experiment order regardless of
//! completion order.

use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use hammer_bench::{ann_bench, experiments, kernel_bench, serve_bench, sim_bench, stab_bench};

/// Runs one of the JSON-artifact bench subcommands and writes its
/// output file.
fn run_bench_artifact(name: &str, quick: bool, out_path: &str) -> ExitCode {
    let (rendered, json) = match name {
        "bench-kernel" => {
            let report = kernel_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-sim" => {
            let report = sim_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-stab" => {
            let report = stab_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-serve" => {
            let report = serve_bench::run(quick);
            (report.render(), report.to_json())
        }
        "bench-ann" => {
            let report = ann_bench::run(quick);
            (report.render(), report.to_json())
        }
        other => unreachable!("unknown bench subcommand {other}"),
    };
    println!("{rendered}");
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("[{name} wrote {out_path}]");
    ExitCode::SUCCESS
}

/// `repro serve [--addr A] [--workers N] [--cache-mb MB]`: run the
/// serving subsystem in the foreground until a client sends `Shutdown`.
fn run_serve(args: &[String]) -> ExitCode {
    /// `--flag N` as a usize, with a readable failure.
    fn usize_flag(args: &[String], flag: &str) -> Result<Option<usize>, String> {
        match flag_value(args, flag)? {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("{flag} requires a non-negative integer, got {v}")),
        }
    }
    let mut config = hammer_serve::ServeConfig::default();
    let parsed = usize_flag(args, "--workers")
        .map(|v| {
            if let Some(n) = v {
                config.workers = n;
            }
        })
        .and_then(|()| usize_flag(args, "--cache-mb"))
        .map(|v| {
            if let Some(n) = v {
                config.cache_mb = n;
            }
        })
        .and_then(|()| flag_value(args, "--addr").map(|v| v.map(String::from)));
    match parsed {
        Ok(Some(addr)) => config.addr = addr,
        Ok(None) => {}
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let server = match hammer_serve::serve(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[serve] listening on {} ({} workers, {} MiB cache); send Shutdown to stop",
        server.local_addr(),
        config.workers,
        config.cache_mb,
    );
    let stats = server.wait();
    eprintln!(
        "[serve] shut down after {} requests ({} hits, {} misses, {} coalesced, {} busy)",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.coalesced,
        stats.busy_rejections,
    );
    ExitCode::SUCCESS
}

/// `repro serve-smoke [--addr A] [--shutdown]`: one client round trip —
/// Ping, a small Reconstruct (checked against the direct library
/// call), Stats, and optionally Shutdown. The CI workflow runs this
/// against a backgrounded `repro serve`.
fn run_serve_smoke(args: &[String]) -> ExitCode {
    use hammer_dist::BitString;
    let addr = match flag_value(args, "--addr") {
        Ok(addr) => addr.unwrap_or("127.0.0.1:7878").to_string(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut client = match hammer_serve::ServeClient::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("serve-smoke: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |what: &str, e: hammer_serve::WireError| {
        eprintln!("serve-smoke: {what} failed: {e}");
        ExitCode::FAILURE
    };
    if let Err(e) = client.ping() {
        return fail("ping", e);
    }
    let mut counts = hammer_dist::Counts::new(5).expect("valid width");
    let bs = |s: &str| BitString::parse(s).expect("valid literal");
    counts.record_n(bs("11111"), 150);
    counts.record_n(bs("00100"), 250);
    for s in ["11110", "11101", "11011", "10111", "01111"] {
        counts.record_n(bs(s), 80);
    }
    let config = hammer_core::HammerConfig::paper();
    let served = match client.reconstruct(&counts, &config) {
        Ok(d) => d,
        Err(e) => return fail("reconstruct", e),
    };
    let direct = hammer_core::Hammer::with_config(config).reconstruct_counts(&counts);
    if served != direct {
        eprintln!("serve-smoke: served reconstruction differs from the direct library call");
        return ExitCode::FAILURE;
    }
    let stats = match client.stats() {
        Ok(stats) => stats,
        Err(e) => return fail("stats", e),
    };
    eprintln!(
        "[serve-smoke] ok: ping + reconstruct round-tripped; server stats: {} requests, \
         {} hits, {} misses",
        stats.requests, stats.cache_hits, stats.cache_misses,
    );
    if args.iter().any(|a| a == "--shutdown") {
        if let Err(e) = client.shutdown() {
            return fail("shutdown", e);
        }
        eprintln!("[serve-smoke] shutdown acknowledged");
    }
    ExitCode::SUCCESS
}

/// `repro chaos-smoke [--quick]`: an in-process robustness drill. Boots
/// a server on an ephemeral port, drives reconstructions through a
/// [`hammer_serve::chaos::ChaosProxy`] under each fault class, checks
/// that every completed reply is byte-identical to the direct library
/// call, exercises the deadline path against an artificially slowed
/// compute, and verifies shutdown stays bounded. `--quick` runs one
/// pass over the fault matrix instead of three.
fn run_chaos_smoke(args: &[String]) -> ExitCode {
    use hammer_serve::chaos::{ChaosProxy, Fault};
    use hammer_serve::WireError;
    use std::time::{Duration, Instant};

    let quick = args.iter().any(|a| a == "--quick");
    let rounds = if quick { 1 } else { 3 };

    let server = match hammer_serve::serve(&hammer_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_mb: 16,
        io_timeout: Some(Duration::from_millis(400)),
        ..hammer_serve::ServeConfig::default()
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("chaos-smoke: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut counts = hammer_dist::Counts::new(6).expect("valid width");
    let bs = |s: &str| hammer_dist::BitString::parse(s).expect("valid literal");
    counts.record_n(bs("111111"), 400);
    counts.record_n(bs("001000"), 220);
    for s in ["111110", "111101", "111011", "110111", "101111", "011111"] {
        counts.record_n(bs(s), 70);
    }
    let config = hammer_core::HammerConfig::paper();
    let direct = hammer_core::Hammer::with_config(config).reconstruct_counts(&counts);

    // Fault matrix: completed replies must be byte-identical; failures
    // must be typed errors, promptly. Never a hang, never a wrong answer.
    let faults = [
        Fault::None,
        Fault::DelayMs(5),
        Fault::CorruptRequestByte(2),
        Fault::DropRequestAfter(8),
        Fault::TruncateReplyAfter(10),
        Fault::HalfCloseRequestAfter(6),
    ];
    let (mut completed, mut refused) = (0usize, 0usize);
    for round in 0..rounds {
        for fault in faults {
            let proxy = match ChaosProxy::spawn(server.local_addr(), vec![fault]) {
                Ok(proxy) => proxy,
                Err(e) => {
                    eprintln!("chaos-smoke: proxy spawn failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let started = Instant::now();
            let result = hammer_serve::ServeClient::connect(proxy.local_addr().to_string())
                .map(|c| {
                    c.with_io_timeout(Some(Duration::from_millis(700)))
                        .with_busy_retries(0, Duration::ZERO)
                })
                .ok()
                .map(|mut client| client.reconstruct(&counts, &config));
            match result {
                Some(Ok(got)) if got == direct => completed += 1,
                Some(Ok(_)) => {
                    eprintln!("chaos-smoke: CORRUPTED reply under {fault:?} (round {round})");
                    return ExitCode::FAILURE;
                }
                Some(Err(_)) | None => refused += 1,
            }
            if started.elapsed() > Duration::from_secs(5) {
                eprintln!(
                    "chaos-smoke: fault {fault:?} stalled for {:?}",
                    started.elapsed()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "[chaos-smoke] fault matrix: {completed} byte-identical completions, \
         {refused} typed refusals, 0 corruptions, 0 hangs"
    );

    // Deadline drill: a 120 ms budget against a compute slowed to 1.2 s
    // must come back DeadlineExceeded fast. Fresh counts — the fault
    // matrix already cached `counts`, and cache hits skip the compute.
    let mut fresh = counts.clone();
    fresh.record_n(bs("010101"), 33);
    hammer_serve::fault::set_slow_compute_ms(1200);
    let deadline_ok = (|| {
        let mut client = hammer_serve::ServeClient::connect(server.local_addr().to_string())
            .ok()?
            .with_deadline(Some(Duration::from_millis(120)));
        let started = Instant::now();
        let outcome = client.reconstruct(&fresh, &config);
        let elapsed = started.elapsed();
        matches!(outcome, Err(WireError::DeadlineExceeded))
            .then_some(elapsed < Duration::from_millis(800))?
            .then_some(())
    })();
    hammer_serve::fault::reset();
    if deadline_ok.is_none() {
        eprintln!("chaos-smoke: deadline drill failed (no prompt DeadlineExceeded)");
        return ExitCode::FAILURE;
    }
    eprintln!("[chaos-smoke] deadline drill: slow compute cut short with DeadlineExceeded");

    // Bounded shutdown: the drain must finish within a watchdog budget.
    server.shutdown();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = done_tx.send(server.wait());
    });
    match done_rx.recv_timeout(Duration::from_secs(10)) {
        Ok(stats) => {
            eprintln!(
                "[chaos-smoke] ok: bounded shutdown after {} requests ({} busy rejections)",
                stats.requests, stats.busy_rejections
            );
            ExitCode::SUCCESS
        }
        Err(_) => {
            eprintln!("chaos-smoke: shutdown exceeded the 10 s watchdog");
            ExitCode::FAILURE
        }
    }
}

/// Parses the value following a `--flag` argument.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.as_str())),
            _ => Err(format!("{flag} requires a value argument")),
        },
    }
}

/// Runs `ids` across `jobs` workers (work-stealing over an atomic
/// cursor), printing each report in id order as soon as it and all its
/// predecessors are done.
fn run_experiments(ids: &[&str], quick: bool, jobs: usize) -> bool {
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Option<String>>>> =
        ids.iter().map(|_| Mutex::new(None)).collect();
    let jobs = jobs.clamp(1, ids.len().max(1));
    let any_failed = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&id) = ids.get(i) else { break };
                let start = std::time::Instant::now();
                // Catch per-experiment panics: an unfilled result slot
                // would leave the ordered printer below waiting
                // forever, hanging the whole run instead of failing it.
                let report = match std::panic::catch_unwind(|| experiments::run(id, quick)) {
                    Ok(Some(text)) => {
                        eprintln!("[{id} finished in {:.1}s]", start.elapsed().as_secs_f64());
                        Some(text)
                    }
                    Ok(None) => {
                        eprintln!("unknown experiment id: {id} (try --list)");
                        any_failed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Err(_) => {
                        eprintln!("[{id} panicked]");
                        any_failed.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                };
                *results[i].lock().expect("no poisoned result slot") = Some(report);
            });
        }
        // The main thread is the ordered printer: emit report i as soon
        // as every report before it has been emitted.
        for slot in &results {
            loop {
                if let Some(report) = slot.lock().expect("no poisoned result slot").take() {
                    if let Some(text) = report {
                        println!("{text}");
                    }
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
    })
    .expect("experiment worker does not panic");
    any_failed.load(Ordering::Relaxed) > 0
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <experiment-id>... | all [--quick] [--jobs N]");
        eprintln!("       repro bench-kernel [--quick] [--out PATH]");
        eprintln!("       repro bench-sim [--quick] [--out PATH]");
        eprintln!("       repro bench-stab [--quick] [--out PATH]");
        eprintln!("       repro bench-serve [--quick] [--out PATH]");
        eprintln!("       repro bench-ann [--quick] [--out PATH]");
        eprintln!("       repro serve [--addr A] [--workers N] [--cache-mb MB]");
        eprintln!("       repro serve-smoke [--addr A] [--shutdown]");
        eprintln!("       repro chaos-smoke [--quick]");
        eprintln!("       repro --list");
        return ExitCode::FAILURE;
    }
    if args.first().map(String::as_str) == Some("serve") {
        return run_serve(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve-smoke") {
        return run_serve_smoke(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos-smoke") {
        return run_chaos_smoke(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bench) = args.iter().find(|a| {
        matches!(
            a.as_str(),
            "bench-kernel" | "bench-sim" | "bench-stab" | "bench-serve" | "bench-ann"
        )
    }) {
        let out_value = match flag_value(&args, "--out") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let default_out = match bench.as_str() {
            "bench-kernel" => "BENCH_kernel.json",
            "bench-sim" => "BENCH_sim.json",
            "bench-serve" => "BENCH_serve.json",
            "bench-ann" => "BENCH_ann.json",
            _ => "BENCH_stab.json",
        };
        // Refuse to silently drop experiment ids passed alongside the
        // subcommand (the out path itself is not an id).
        let stray: Vec<&str> = args
            .iter()
            .filter(|a| {
                !a.starts_with("--") && a.as_str() != bench && Some(a.as_str()) != out_value
            })
            .map(String::as_str)
            .collect();
        if !stray.is_empty() {
            eprintln!(
                "{bench} cannot be combined with experiment ids (got: {})",
                stray.join(", ")
            );
            return ExitCode::FAILURE;
        }
        return run_bench_artifact(bench, quick, out_value.unwrap_or(default_out));
    }
    let jobs = match flag_value(&args, "--jobs") {
        Ok(None) => {
            // Each experiment's TrajectoryEngine already fans its trial
            // budget out over SimTuning::default().threads workers;
            // divide that out so jobs × engine-threads ≈ cores instead
            // of cores².
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
            (cores / hammer_sim::SimTuning::default().threads).max(1)
        }
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(j) if j >= 1 => j,
            _ => {
                eprintln!("--jobs requires a positive integer, got {v}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs_value = flag_value(&args, "--jobs").expect("validated above");
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--") && Some(a.as_str()) != jobs_value)
            .map(String::as_str)
            .collect()
    };
    if run_experiments(&ids, quick, jobs) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick]
//! repro fig8b fig9a table3 [--quick]
//! repro --list
//! ```

use std::process::ExitCode;

use hammer_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <experiment-id>... | all [--quick]");
        eprintln!("       repro --list");
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--list") {
        for id in experiments::ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.to_vec()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .collect()
    };
    let mut failed = false;
    for id in ids {
        let start = std::time::Instant::now();
        match experiments::run(id, quick) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{id} finished in {:.1}s]", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `repro top` — a live terminal dashboard over a running server.
//!
//! Polls the HTTP exposition endpoints (`/series`, `/slo`, `/events`,
//! backed by the server's rollup rings) and renders request rate,
//! per-stage latency quantiles, cache hit rate, queue depth, store
//! traffic and firing SLO alerts. When the target has no exposition
//! listener, `--binary` falls back to diffing `MetricsSnapshot`s over
//! the binary protocol — same numbers, no rollup history, no events.
//!
//! `--once` prints a single frame and exits (scriptable snapshots, CI
//! smoke); live mode redraws every `--interval-ms` until interrupted.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use hammer_obs::{format_human_parts, Level, MetricsSnapshot};

use crate::json::Json;

/// What `repro top` connects to and how.
#[derive(Debug, Clone)]
pub struct TopConfig {
    /// The exposition address (HTTP mode) or serving address
    /// (`--binary` mode).
    pub addr: String,
    /// Poll `MetricsSnapshot` over the binary protocol instead of the
    /// HTTP endpoints.
    pub binary: bool,
    /// Render one frame and exit.
    pub once: bool,
    /// Redraw period in live mode.
    pub interval_ms: u64,
    /// Maximum frames to render in live mode; `None` runs until the
    /// process is interrupted. (Tests bound their runs with this.)
    pub max_frames: Option<u64>,
}

impl Default for TopConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9878".into(),
            binary: false,
            once: true,
            interval_ms: 1_000,
            max_frames: None,
        }
    }
}

/// Runs the dashboard, writing frames to `out`.
///
/// # Errors
///
/// Connection and protocol failures, described.
pub fn run(config: &TopConfig, out: &mut impl Write) -> Result<(), String> {
    let mut frames = 0u64;
    let mut binary = BinaryPoller::default();
    loop {
        let frame = if config.binary {
            binary.frame(&config.addr)?
        } else {
            http_frame(&config.addr)?
        };
        if !config.once {
            // Clear + home; plain ANSI, no terminal library.
            let _ = write!(out, "\x1b[2J\x1b[H");
        }
        writeln!(out, "{frame}").map_err(|e| format!("write frame: {e}"))?;
        frames += 1;
        if config.once || config.max_frames.is_some_and(|max| frames >= max) {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(config.interval_ms.max(100)));
    }
}

// ---------------------------------------------------------------------
// HTTP mode
// ---------------------------------------------------------------------

/// One `GET` against the exposition listener; returns the body.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(3))))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send {path}: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read {path}: {e}"))?;
    let response = String::from_utf8_lossy(&response);
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{path}: malformed HTTP response"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("?");
    if status != "200" {
        return Err(format!("{path}: HTTP {status}"));
    }
    Ok(body.to_owned())
}

fn get_json(addr: &str, path: &str) -> Result<Json, String> {
    Json::parse(&http_get(addr, path)?).map_err(|e| format!("{path}: {e}"))
}

/// Last-point quantiles of a histogram series over `window` seconds.
fn stage_quantiles(addr: &str, series: &str, window: u64) -> Option<(u64, u64, u64, u64)> {
    let doc = get_json(
        addr,
        &format!("/series?name={series}&window={window}&points=1"),
    )
    .ok()?;
    let p = doc.get("points")?.as_array()?.last()?;
    Some((
        p.get("count")?.as_u64()?,
        p.get("p50_ns")?.as_u64()?,
        p.get("p95_ns")?.as_u64()?,
        p.get("p99_ns")?.as_u64()?,
    ))
}

/// Per-window deltas of a counter series, oldest first.
fn counter_deltas(addr: &str, series: &str, points: usize) -> Vec<u64> {
    get_json(
        addr,
        &format!("/series?name={series}&window=1&points={points}"),
    )
    .ok()
    .and_then(|doc| {
        Some(
            doc.get("points")?
                .as_array()?
                .iter()
                .filter_map(|p| p.get("delta")?.as_u64())
                .collect(),
        )
    })
    .unwrap_or_default()
}

/// Latest value of a gauge series.
fn gauge_last(addr: &str, series: &str) -> Option<i64> {
    let doc = get_json(addr, &format!("/series?name={series}&window=1&points=1")).ok()?;
    let p = doc.get("points")?.as_array()?.last()?;
    Some(p.get("last")?.as_f64()? as i64)
}

fn http_frame(addr: &str) -> Result<String, String> {
    let mut f = String::new();
    let reqs = counter_deltas(addr, "serve.requests", 30);
    let rate = reqs.last().copied().unwrap_or(0);
    f.push_str(&format!(
        "repro top — {addr}\n\nreq/s {rate:>8}  {}\n",
        sparkline(&reqs)
    ));
    if let (Some(depth), Some(conns)) = (
        gauge_last(addr, "serve.queue.depth"),
        gauge_last(addr, "serve.connections"),
    ) {
        f.push_str(&format!("queue {depth:>9}  conns {conns}\n"));
    }
    let hits: u64 = counter_deltas(addr, "serve.cache.hits", 30).iter().sum();
    let misses: u64 = counter_deltas(addr, "serve.cache.misses", 30).iter().sum();
    if hits + misses > 0 {
        f.push_str(&format!(
            "cache {:>8.1}%  hit rate over 30 s ({hits} hits / {misses} misses)\n",
            100.0 * hits as f64 / (hits + misses) as f64
        ));
    }
    let spills: u64 = counter_deltas(addr, "serve.store.spills", 30).iter().sum();
    let loads: u64 = counter_deltas(addr, "serve.store.loads", 30).iter().sum();
    if spills + loads > 0 {
        f.push_str(&format!(
            "store {spills:>8} spills / {loads} loads over 30 s\n"
        ));
    }
    f.push_str("\nstage            count      p50        p95        p99\n");
    for stage in [
        "serve.stage.decode_ns",
        "serve.stage.queue_ns",
        "serve.stage.coalesce_wait_ns",
        "serve.stage.cache_probe_ns",
        "serve.stage.store_load_ns",
        "serve.stage.compute_ns",
        "serve.stage.encode_ns",
        "serve.stage.write_ns",
        "serve.request_ns",
    ] {
        if let Some((count, p50, p95, p99)) = stage_quantiles(addr, stage, 60) {
            if count > 0 {
                let label = stage
                    .trim_start_matches("serve.stage.")
                    .trim_start_matches("serve.");
                f.push_str(&format!(
                    "{label:<14} {count:>7}  {:>9} {:>10} {:>10}\n",
                    fmt_ns(p50),
                    fmt_ns(p95),
                    fmt_ns(p99)
                ));
            }
        }
    }
    // SLOs: firing alerts lead; healthy ones print their burn.
    if let Ok(doc) = get_json(addr, "/slo") {
        if let Some(slos) = doc.get("slos").and_then(Json::as_array) {
            if !slos.is_empty() {
                f.push_str("\nslo              state    burn(fast/slow)\n");
                for s in slos {
                    let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
                    let firing = s.get("firing").and_then(Json::as_bool).unwrap_or(false);
                    let fast = s.get("fast_burn").and_then(Json::as_f64).unwrap_or(0.0);
                    let slow = s.get("slow_burn").and_then(Json::as_f64).unwrap_or(0.0);
                    f.push_str(&format!(
                        "{name:<14} {:>8}  {fast:>7.1} / {slow:.1}\n",
                        if firing { "FIRING" } else { "ok" }
                    ));
                }
            }
        }
    }
    // Recent warnings and errors, rendered by the shared formatter.
    if let Ok(doc) = get_json(addr, "/events?n=8&level=warn") {
        if let Some(events) = doc.get("events").and_then(Json::as_array) {
            if !events.is_empty() {
                f.push_str("\nrecent events\n");
                for e in events {
                    f.push_str(&format!("  {}\n", render_event(e)));
                }
            }
        }
    }
    Ok(f)
}

/// Re-renders one `/events` entry with the same formatter as the
/// server's stderr echo.
fn render_event(e: &Json) -> String {
    let level = e
        .get("level")
        .and_then(Json::as_str)
        .and_then(Level::parse)
        .unwrap_or(Level::Info);
    let fields: Vec<(&str, &str)> = e
        .get("fields")
        .map(|f| match f {
            Json::Obj(members) => members
                .iter()
                .filter_map(|(k, v)| Some((k.as_str(), v.as_str()?)))
                .collect(),
            _ => Vec::new(),
        })
        .unwrap_or_default();
    format_human_parts(
        e.get("unix_ms").and_then(Json::as_u64).unwrap_or(0),
        level,
        e.get("target").and_then(Json::as_str).unwrap_or("?"),
        e.get("message").and_then(Json::as_str).unwrap_or(""),
        fields.iter().copied(),
        e.get("trace_id")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(0),
    )
}

// ---------------------------------------------------------------------
// binary fallback
// ---------------------------------------------------------------------

/// Diffs successive `MetricsSnapshot`s over the binary protocol — the
/// fallback for servers running without `--metrics-addr`.
#[derive(Default)]
struct BinaryPoller {
    prev: Option<MetricsSnapshot>,
}

impl BinaryPoller {
    fn frame(&mut self, addr: &str) -> Result<String, String> {
        let mut client =
            hammer_serve::ServeClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let snap = client
            .metrics_snapshot()
            .map_err(|e| format!("metrics snapshot: {e}"))?;
        let mut f = format!("repro top — {addr} (binary protocol; cumulative quantiles)\n\n");
        let delta = |name: &str| -> u64 {
            let now = snap.counter(name).unwrap_or(0);
            let before = self
                .prev
                .as_ref()
                .and_then(|p| p.counter(name))
                .unwrap_or(now);
            now.saturating_sub(before)
        };
        f.push_str(&format!(
            "requests {:>8}  (+{} since last poll)\n",
            snap.counter("serve.requests").unwrap_or(0),
            delta("serve.requests")
        ));
        if let (Some(depth), Some(conns)) = (
            snap.gauge("serve.queue.depth"),
            snap.gauge("serve.connections"),
        ) {
            f.push_str(&format!("queue {depth:>11}  conns {conns}\n"));
        }
        let (hits, misses) = (
            snap.counter("serve.cache.hits").unwrap_or(0),
            snap.counter("serve.cache.misses").unwrap_or(0),
        );
        if hits + misses > 0 {
            f.push_str(&format!(
                "cache {:>10.1}%  lifetime hit rate\n",
                100.0 * hits as f64 / (hits + misses) as f64
            ));
        }
        f.push_str("\nstage            count      p50        p95        p99\n");
        for s in &snap.series {
            if let hammer_obs::SeriesValue::Histogram(h) = &s.value {
                let count = h.count();
                if count == 0 || !s.name.starts_with("serve.") {
                    continue;
                }
                let label = s
                    .name
                    .trim_start_matches("serve.stage.")
                    .trim_start_matches("serve.");
                f.push_str(&format!(
                    "{label:<14} {count:>7}  {:>9} {:>10} {:>10}\n",
                    fmt_ns(h.quantile(0.50)),
                    fmt_ns(h.quantile(0.95)),
                    fmt_ns(h.quantile(0.99))
                ));
            }
        }
        f.push_str(
            "\n(no rollup history, SLOs or events over the binary protocol — \
                    start the server with --metrics-addr for the full dashboard)\n",
        );
        self.prev = Some(snap);
        Ok(f)
    }
}

// ---------------------------------------------------------------------
// rendering helpers
// ---------------------------------------------------------------------

/// `1234567` ns → `1.23ms`; keeps stage tables readable across six
/// orders of magnitude.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.2}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// A unicode block-character sparkline of the values, scaled to their
/// max (empty input renders empty).
fn sparkline(values: &[u64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| BLOCKS[0]).collect();
    }
    values
        .iter()
        .map(|&v| BLOCKS[((v * 7).div_ceil(max) as usize).min(7)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(25_000), "25.00us");
        assert_eq!(fmt_ns(1_234_567), "1234.57us");
        assert_eq!(fmt_ns(25_000_000), "25.00ms");
        assert_eq!(fmt_ns(12_000_000_000), "12.00s");
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 5, 10]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.ends_with('█'));
        assert!(line.starts_with('▁'));
    }

    #[test]
    fn render_event_matches_shared_formatter() {
        let doc = Json::parse(
            r#"{"seq":3,"unix_ms":3661234,"level":"warn","target":"slo","message":"slo alert firing","trace_id":"00000000000000ab","fields":{"slo":"reconstruct"}}"#,
        )
        .unwrap();
        let events = [doc];
        let line = render_event(&events[0]);
        assert_eq!(
            line,
            "01:01:01.234 WARN  [slo] slo alert firing slo=reconstruct trace=00000000000000ab"
        );
    }
}

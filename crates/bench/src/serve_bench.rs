//! The `repro bench-serve` measurement harness: an in-process
//! `hammer_serve` server driven by N concurrent client threads through
//! mixed hot/cold workloads, emitting the `BENCH_serve.json` artifact
//! (throughput, p50/p99 latency, cache hit rate — all measured wall
//! clock, never extrapolated).
//!
//! Three scenarios ladder the compute-per-request up:
//!
//! * `reconstruct-small` — the §4.5 halo histogram (11 unique
//!   outcomes): latency is dominated by the RPC itself, so this row
//!   measures protocol + runtime overhead;
//! * `reconstruct-large` — a synthetic 4096-unique 16-bit histogram:
//!   the `O(N²)` kernel dominates, so the cache hit/miss split shows;
//! * `sample-reconstruct` — a noisy 16-qubit GHZ sampled for 20K trials
//!   then reconstructed: the full pipeline behind one opcode.
//!
//! "Hot" requests repeat one fingerprint (cache hits after the first);
//! "cold" requests salt the payload so every one computes. The hot
//! fraction is 80%.
//!
//! Two further rows measure the persistent spill store across a
//! restart: `restart-warm` replays a populated key set against a
//! server warm-started over the same store directory (served by
//! decode, not recompute), while `restart-cold` replays it against an
//! empty store and pays the full reconstruction per key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use hammer_core::HammerConfig;
use hammer_dist::{BitString, Counts};
use hammer_serve::{serve, DeviceSpec, SampleJob, ServeClient, ServeConfig, WireError};
use hammer_sim::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Client threads driving the server.
const CLIENTS: usize = 4;
/// Fraction of requests that share the hot fingerprint (per mille to
/// keep the schedule integer-deterministic).
const HOT_PER_10: u64 = 8;

/// One measured serving scenario.
#[derive(Debug, Clone)]
pub struct ServeBenchRow {
    /// Scenario id.
    pub scenario: &'static str,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests completed (excludes busy retries).
    pub requests: u64,
    /// Wall-clock seconds for the whole scenario.
    pub secs: f64,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
    /// Cache hit rate over cacheable requests (hits / (hits + misses +
    /// coalesced)).
    pub hit_rate: f64,
    /// Requests that coalesced onto an in-flight computation.
    pub coalesced: u64,
    /// Busy rejections observed (each retried until served).
    pub busy: u64,
    /// Cache misses served from the persistent store instead of
    /// recomputed (zero when no store is attached).
    pub store_loads: u64,
    /// Cache evictions spilled to the persistent store.
    pub store_spills: u64,
}

impl ServeBenchRow {
    /// Requests per second.
    #[must_use]
    pub fn req_per_sec(&self) -> f64 {
        self.requests as f64 / self.secs
    }
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Request-pool workers of the server under test.
    pub workers: usize,
    /// True when run with `--quick` (CI smoke: smaller sweep).
    pub quick: bool,
    /// One row per scenario.
    pub rows: Vec<ServeBenchRow>,
}

/// The §4.5 halo histogram, salted for cold requests.
fn halo_counts(salt: u64) -> Counts {
    let mut counts = Counts::new(5).expect("valid width");
    let bs = |s: &str| BitString::parse(s).expect("valid literal");
    counts.record_n(bs("11111"), 150);
    counts.record_n(bs("00100"), 250 + salt);
    for s in ["11110", "11101", "11011", "10111", "01111"] {
        counts.record_n(bs(s), 80);
    }
    for s in ["11100", "11010", "00111", "01011"] {
        counts.record_n(bs(s), 50);
    }
    counts
}

/// A synthetic 16-bit histogram with `unique` distinct outcomes,
/// deterministic in `salt`.
fn large_counts(unique: usize, salt: u64) -> Counts {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut counts = Counts::new(16).expect("valid width");
    for _ in 0..unique {
        let key = rng.gen::<u64>() & 0xFFFF;
        counts.record_n(BitString::new(key, 16), 1 + rng.gen::<u64>() % 100);
    }
    // The salt perturbs one deterministic outcome so cold requests get
    // fresh fingerprints without changing the support size.
    counts.record_n(BitString::new(salt & 0xFFFF, 16), 1 + salt);
    counts
}

fn ghz_job(n: usize, trials: u64, seed: u64) -> SampleJob {
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    SampleJob {
        circuit,
        device: DeviceSpec::IbmParis(n.min(27)),
        trials,
        seed,
        config: HammerConfig::paper(),
    }
}

/// What one client thread sends for request `i` of a scenario.
enum Work {
    Reconstruct(Counts),
    Sample(SampleJob),
}

fn percentile(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx] as f64
}

/// Runs one scenario against a fresh server and measures it.
fn run_scenario<F>(
    scenario: &'static str,
    workers: usize,
    per_client: u64,
    make_work: F,
) -> ServeBenchRow
where
    F: Fn(u64, u64) -> Work + Send + Sync + 'static,
{
    let server = serve(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_limit: 4096,
        cache_mb: 128,
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();

    let make_work = Arc::new(make_work);
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let busy = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..CLIENTS as u64)
        .map(|client_id| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let busy = Arc::clone(&busy);
            let make_work = Arc::clone(&make_work);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut latencies = Vec::with_capacity(per_client as usize);
                barrier.wait();
                for i in 0..per_client {
                    let work = make_work(client_id, i);
                    let start = Instant::now();
                    loop {
                        let result = match &work {
                            Work::Reconstruct(counts) => client
                                .reconstruct(counts, &HammerConfig::paper())
                                .map(|_| ()),
                            Work::Sample(job) => client.sample_and_reconstruct(job).map(|_| ()),
                        };
                        match result {
                            Ok(()) => break,
                            Err(WireError::Busy) => {
                                busy.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("bench request failed: {e}"),
                        }
                    }
                    latencies.push(start.elapsed().as_micros() as u64);
                }
                latencies
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    for t in threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let stats = server.stats();
    let cacheable = stats.cache_hits + stats.cache_misses + stats.coalesced;
    let row = ServeBenchRow {
        scenario,
        clients: CLIENTS,
        requests: latencies.len() as u64,
        secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        hit_rate: if cacheable > 0 {
            stats.cache_hits as f64 / cacheable as f64
        } else {
            0.0
        },
        coalesced: stats.coalesced,
        busy: busy.load(Ordering::Relaxed),
        store_loads: stats.store_loads,
        store_spills: stats.store_spills,
    };
    server.shutdown();
    let _ = server.wait();
    eprintln!(
        "[bench-serve] {}: {} reqs in {:.3} s ({:.0} req/s), p50 {:.0} µs, p99 {:.0} µs, \
         hit rate {:.3}, coalesced {}, busy {}",
        row.scenario,
        row.requests,
        row.secs,
        row.req_per_sec(),
        row.p50_us,
        row.p99_us,
        row.hit_rate,
        row.coalesced,
        row.busy,
    );
    row
}

/// Measures what the persistent spill store buys across a restart:
/// populate a store-backed server with `keys` distinct heavyweight
/// histograms and shut it down gracefully (flushing the resident hot
/// set), then replay the same keys against (a) a server warm-started
/// over the same store directory and (b) a server over a fresh, empty
/// one. Warm restarts answer from the store (decode and reply); cold
/// restarts pay the full O(N²) reconstruction per key.
fn run_restart_rows(workers: usize, keys: u64) -> Vec<ServeBenchRow> {
    let root =
        std::env::temp_dir().join(format!("hammer-bench-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let boot = |dir: std::path::PathBuf| {
        serve(&ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_limit: 4096,
            // A deliberately tiny cache: entries spill on eviction, so
            // the store — not the LRU — carries the set across restarts.
            cache_mb: 1,
            store_dir: Some(dir),
            store_mb: 256,
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port")
    };

    let warm_dir = root.join("warm");
    let server = boot(warm_dir.clone());
    let mut client = ServeClient::connect(server.local_addr().to_string()).expect("connect");
    for salt in 0..keys {
        client
            .reconstruct(&large_counts(4096, salt), &HammerConfig::paper())
            .expect("populate request");
    }
    drop(client);
    server.shutdown();
    let _ = server.wait();

    let mut rows = Vec::new();
    for (scenario, dir) in [
        ("restart-warm", warm_dir),
        ("restart-cold", root.join("cold")),
    ] {
        let server = boot(dir);
        let mut client = ServeClient::connect(server.local_addr().to_string()).expect("connect");
        let start = Instant::now();
        let mut latencies = Vec::with_capacity(keys as usize);
        for salt in 0..keys {
            let t = Instant::now();
            client
                .reconstruct(&large_counts(4096, salt), &HammerConfig::paper())
                .expect("restart request");
            latencies.push(t.elapsed().as_micros() as u64);
        }
        let secs = start.elapsed().as_secs_f64();
        drop(client);
        latencies.sort_unstable();
        let stats = server.stats();
        let cacheable = stats.cache_hits + stats.cache_misses + stats.coalesced;
        let row = ServeBenchRow {
            scenario,
            clients: 1,
            requests: keys,
            secs,
            p50_us: percentile(&latencies, 0.50),
            p99_us: percentile(&latencies, 0.99),
            hit_rate: if cacheable > 0 {
                stats.cache_hits as f64 / cacheable as f64
            } else {
                0.0
            },
            coalesced: stats.coalesced,
            busy: 0,
            store_loads: stats.store_loads,
            store_spills: stats.store_spills,
        };
        server.shutdown();
        let _ = server.wait();
        eprintln!(
            "[bench-serve] {}: {} reqs in {:.3} s ({:.0} req/s), p50 {:.0} µs, p99 {:.0} µs, \
             {} store loads",
            row.scenario,
            row.requests,
            row.secs,
            row.req_per_sec(),
            row.p50_us,
            row.p99_us,
            row.store_loads,
        );
        rows.push(row);
    }
    let _ = std::fs::remove_dir_all(&root);
    rows
}

/// Runs the sweep. Quick mode shrinks the request budgets (CI smoke).
#[must_use]
pub fn run(quick: bool) -> ServeBenchReport {
    let workers = ServeConfig::default().workers;
    let (small_n, large_n, sample_n, restart_n) = if quick {
        (50, 8, 6, 6)
    } else {
        (2000, 150, 100, 24)
    };

    // Hot requests share salt 0; cold requests get a unique salt per
    // (client, index) pair, offset to never collide with the hot key.
    let salt_of = |client: u64, i: u64| 1 + client * 1_000_000 + i;
    let mut rows = vec![
        run_scenario("reconstruct-small", workers, small_n, move |c, i| {
            let salt = if i % 10 < HOT_PER_10 {
                0
            } else {
                salt_of(c, i)
            };
            Work::Reconstruct(halo_counts(salt))
        }),
        run_scenario("reconstruct-large", workers, large_n, move |c, i| {
            let salt = if i % 10 < HOT_PER_10 {
                0
            } else {
                salt_of(c, i)
            };
            Work::Reconstruct(large_counts(4096, salt))
        }),
        run_scenario("sample-reconstruct", workers, sample_n, move |c, i| {
            let seed = if i % 10 < HOT_PER_10 {
                0
            } else {
                salt_of(c, i)
            };
            Work::Sample(ghz_job(16, 20_000, seed))
        }),
    ];
    rows.extend(run_restart_rows(workers, restart_n));
    ServeBenchReport {
        workers,
        quick,
        rows,
    }
}

impl ServeBenchReport {
    /// Serializes the sweep as the `BENCH_serve.json` artifact
    /// (hand-rolled: the workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"clients\": {}, \"requests\": {}, \
                 \"secs\": {:.6}, \"req_per_sec\": {:.1}, \"p50_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"cache_hit_rate\": {:.4}, \"coalesced\": {}, \
                 \"busy_retries\": {}, \"store_loads\": {}, \"store_spills\": {}, \
                 \"measured\": true}}",
                r.scenario,
                r.clients,
                r.requests,
                r.secs,
                r.req_per_sec(),
                r.p50_us,
                r.p99_us,
                r.hit_rate,
                r.coalesced,
                r.busy,
                r.store_loads,
                r.store_spills,
            ));
        }
        format!(
            "{{\n  \"artifact\": \"BENCH_serve\",\n  \
             \"description\": \"hammer_serve under concurrent load: an in-process TCP server \
             (binary wire protocol, bounded worker-pool queue, request coalescing, sharded LRU \
             distribution cache) driven by {} client threads through mixed 80/20 hot/cold \
             workloads, plus warm-vs-cold restart replays over the persistent spill \
             store. Every cell is measured wall clock (not extrapolated).\",\n  \
             \"workers\": {},\n  \"quick\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            CLIENTS, self.workers, self.quick, rows,
        )
    }

    /// A human-readable summary table for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        use crate::report::{fnum, Table};
        let mut table = Table::new(&[
            "scenario",
            "clients",
            "requests",
            "secs",
            "req/s",
            "p50 (µs)",
            "p99 (µs)",
            "hit rate",
            "coalesced",
            "st.loads",
        ]);
        for r in &self.rows {
            table.row_owned(vec![
                r.scenario.to_string(),
                r.clients.to_string(),
                r.requests.to_string(),
                fnum(r.secs, 3),
                fnum(r.req_per_sec(), 0),
                fnum(r.p50_us, 0),
                fnum(r.p99_us, 0),
                fnum(r.hit_rate, 3),
                r.coalesced.to_string(),
                r.store_loads.to_string(),
            ]);
        }
        format!(
            "bench-serve: {} workers, {} client threads, 80% hot / 20% cold\n{table}",
            self.workers, CLIENTS
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_sane_elements() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!((percentile(&sorted, 0.5) - 51.0).abs() < 1.5);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn hot_and_cold_counts_have_stable_distinct_fingerprints() {
        assert_eq!(halo_counts(0).fingerprint(), halo_counts(0).fingerprint());
        assert_ne!(halo_counts(0).fingerprint(), halo_counts(1).fingerprint());
        assert_eq!(
            large_counts(512, 0).fingerprint(),
            large_counts(512, 0).fingerprint()
        );
        assert_ne!(
            large_counts(512, 0).fingerprint(),
            large_counts(512, 9).fingerprint()
        );
    }

    #[test]
    fn quick_sweep_runs_end_to_end() {
        let report = run(true);
        assert_eq!(report.rows.len(), 5);
        for row in &report.rows {
            assert!(row.requests > 0);
            assert!(row.secs > 0.0);
            if !row.scenario.starts_with("restart-") {
                assert!(row.hit_rate > 0.0, "hot requests must hit: {row:?}");
            }
        }
        let warm = report
            .rows
            .iter()
            .find(|r| r.scenario == "restart-warm")
            .expect("warm restart row");
        assert_eq!(
            warm.store_loads, warm.requests,
            "every warm-restart key must be served from the store: {warm:?}"
        );
        let cold = report
            .rows
            .iter()
            .find(|r| r.scenario == "restart-cold")
            .expect("cold restart row");
        assert_eq!(cold.store_loads, 0, "an empty store cannot serve: {cold:?}");
        let json = report.to_json();
        assert!(json.contains("\"artifact\": \"BENCH_serve\""));
        assert!(json.contains("\"store_loads\""));
        assert!(report.render().contains("req/s"));
    }
}

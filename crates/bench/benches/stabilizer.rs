//! Stabilizer-subsystem throughput: tableau construction, closed-form
//! support extraction, and noisy wide-register sampling across widths
//! no dense engine can touch.
//!
//! `cargo bench --bench stabilizer -- --test` runs everything once in
//! smoke mode and shrinks the sweep — that is what CI exercises.
//! `repro bench-stab` is the canonical artifact emitter for the
//! measured wide-register trajectory (`BENCH_stab.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammer_bench::stab_bench::wide_bv_key;
use hammer_circuits::BernsteinVazirani;
use hammer_sim::stabilizer::Tableau;
use hammer_sim::{DeviceModel, StabilizerEngine, TrajectoryEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn widths(c: &Criterion) -> &'static [usize] {
    if c.smoke() {
        &[64]
    } else {
        &[32, 64, 96, 127]
    }
}

/// Tableau evolution + support extraction for wide BV circuits.
fn bench_tableau(c: &mut Criterion) {
    let sizes = widths(c);
    let mut group = c.benchmark_group("tableau");
    for &w in sizes {
        let circuit = BernsteinVazirani::new(wide_bv_key(w)).circuit();
        group.bench_with_input(BenchmarkId::new("evolve", w), &circuit, |b, circ| {
            b.iter(|| Tableau::from_circuit(circ));
        });
        let tableau = Tableau::from_circuit(&circuit);
        group.bench_with_input(BenchmarkId::new("support", w), &tableau, |b, t| {
            b.iter(|| t.output_support());
        });
    }
    group.finish();
}

/// Noisy end-to-end sampling throughput on the stabilizer engine.
fn bench_sampling(c: &mut Criterion) {
    let (sizes, trials): (&[usize], u64) = if c.smoke() {
        (&[64], 256)
    } else {
        (&[32, 64, 96, 127], 2048)
    };
    let mut group = c.benchmark_group("stabilizer_sampling");
    for &w in sizes {
        let circuit = BernsteinVazirani::new(wide_bv_key(w)).circuit();
        let device = DeviceModel::google_sycamore(circuit.num_qubits());
        group.bench_with_input(BenchmarkId::new("bv", w), &circuit, |b, circ| {
            let engine = StabilizerEngine::new(&device);
            let mut rng = StdRng::seed_from_u64(0x57AB);
            b.iter(|| engine.sample(circ, trials, &mut rng).unwrap());
        });
    }
    group.finish();
}

/// Head-to-head at a dense-simulable width: the tableau path vs the
/// dense trajectory engine on the identical (seed-compatible) workload.
fn bench_vs_dense(c: &mut Criterion) {
    let trials: u64 = if c.smoke() { 128 } else { 1024 };
    let n = 14usize;
    let circuit = BernsteinVazirani::new(wide_bv_key(n - 1)).circuit();
    let device = DeviceModel::google_sycamore(n);
    let mut group = c.benchmark_group("stabilizer_vs_dense_bv14");
    group.bench_function("stabilizer", |b| {
        let engine = StabilizerEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(0xD0E);
        b.iter(|| engine.sample(&circuit, trials, &mut rng).unwrap());
    });
    group.bench_function("dense", |b| {
        let engine = TrajectoryEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(0xD0E);
        b.iter(|| engine.sample(&circuit, trials, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_tableau, bench_sampling, bench_vs_dense);
criterion_main!(benches);

//! Simulator throughput: state-vector gate application and the two
//! noise engines on a representative BV workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammer_circuits::BernsteinVazirani;
use hammer_dist::BitString;
use hammer_sim::{Circuit, DeviceModel, PropagationEngine, StateVector, TrajectoryEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_statevector_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_layer");
    for &n in &[10usize, 14, 18] {
        // One H layer + one CX ladder.
        let mut circuit = Circuit::new(n);
        for q in 0..n {
            circuit.h(q);
        }
        for q in 0..n - 1 {
            circuit.cx(q, q + 1);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &circuit, |b, circ| {
            b.iter(|| StateVector::from_circuit(circ));
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_engines_bv10_1k_trials");
    let bench = BernsteinVazirani::new(BitString::ones(10));
    let circuit = bench.circuit();
    let device = DeviceModel::ibm_paris(bench.num_qubits());

    group.bench_function("propagation", |b| {
        let engine = PropagationEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| engine.sample(&circuit, 1024, &mut rng).expect("sampling"));
    });
    group.bench_function("trajectory", |b| {
        let engine = TrajectoryEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| engine.sample(&circuit, 1024, &mut rng).expect("sampling"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_statevector_gates, bench_engines
}
criterion_main!(benches);

//! Simulator throughput: specialized vs reference gate kernels, the
//! staged trajectory-engine configurations (kernels / +checkpoint /
//! +threads) across register widths, and the two noise engines on a
//! representative BV workload.
//!
//! `cargo bench --bench simulator -- --test` runs everything once in
//! smoke mode and shrinks the sweep — that is what CI exercises.
//! `repro bench-sim` is the canonical artifact emitter for the measured
//! trajectory (`BENCH_sim.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hammer_bench::sim_bench::bench_circuit;
use hammer_circuits::BernsteinVazirani;
use hammer_dist::BitString;
use hammer_sim::{
    Circuit, DeviceModel, PropagationEngine, SimTuning, StateVector, TrajectoryEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn widths(c: &Criterion) -> &'static [usize] {
    if c.smoke() {
        &[10]
    } else {
        &[10, 14, 18]
    }
}

fn bench_statevector_gates(c: &mut Criterion) {
    let sizes = widths(c);
    let mut group = c.benchmark_group("statevector_layer");
    for &n in sizes {
        // One H layer + one CX ladder.
        let mut circuit = Circuit::new(n);
        for q in 0..n {
            circuit.h(q);
        }
        for q in 0..n - 1 {
            circuit.cx(q, q + 1);
        }
        group.bench_with_input(BenchmarkId::new("reference", n), &circuit, |b, circ| {
            b.iter(|| StateVector::from_circuit_with(circ, &SimTuning::reference()));
        });
        group.bench_with_input(BenchmarkId::new("specialized", n), &circuit, |b, circ| {
            b.iter(|| StateVector::from_circuit_with(circ, &SimTuning::serial()));
        });
    }
    group.finish();
}

fn bench_trajectory_stages(c: &mut Criterion) {
    let (sizes, trials): (&[usize], u64) = if c.smoke() {
        (&[10], 64)
    } else {
        (&[10, 13, 16], 256)
    };
    let stages = hammer_bench::sim_bench::stage_tunings();
    let mut group = c.benchmark_group("trajectory_stages");
    for &n in sizes {
        let circuit = bench_circuit(n);
        let device = DeviceModel::ibm_paris(n);
        group.bench_with_input(BenchmarkId::new("reference", n), &circuit, |b, circ| {
            let engine = TrajectoryEngine::new(&device);
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| engine.sample_reference(circ, trials, &mut rng).unwrap());
        });
        for (name, tuning) in &stages {
            group.bench_with_input(BenchmarkId::new(*name, n), &circuit, |b, circ| {
                let engine = TrajectoryEngine::new(&device).with_tuning(*tuning);
                let mut rng = StdRng::seed_from_u64(3);
                b.iter(|| engine.sample(circ, trials, &mut rng).unwrap());
            });
        }
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_engines_bv10_1k_trials");
    let bench = BernsteinVazirani::new(BitString::ones(10));
    let circuit = bench.circuit();
    let device = DeviceModel::ibm_paris(bench.num_qubits());

    group.bench_function("propagation", |b| {
        let engine = PropagationEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| engine.sample(&circuit, 1024, &mut rng).expect("sampling"));
    });
    group.bench_function("trajectory", |b| {
        let engine = TrajectoryEngine::new(&device);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| engine.sample(&circuit, 1024, &mut rng).expect("sampling"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_statevector_gates, bench_trajectory_stages, bench_engines
}
criterion_main!(benches);

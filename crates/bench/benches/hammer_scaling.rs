//! Table 3 / §6.6: HAMMER's O(N²) runtime scaling in the number of
//! unique outcomes, and the weight-derivation kernel on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammer_core::{global_chs, Hammer};
use hammer_dist::{BitString, Distribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(unique: usize, n_bits: usize, seed: u64) -> Distribution {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if n_bits == 64 {
        u64::MAX
    } else {
        (1u64 << n_bits) - 1
    };
    let mut keys = std::collections::HashSet::with_capacity(unique);
    while keys.len() < unique {
        keys.insert(rng.gen::<u64>() & mask);
    }
    let pairs = keys
        .into_iter()
        .map(|k| (BitString::new(k, n_bits), rng.gen::<f64>() + 1e-6));
    Distribution::from_probs(n_bits, pairs).expect("valid distribution")
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("hammer_reconstruct");
    for &unique in &[512usize, 2048, 8192] {
        let dist = synthetic(unique, 24, 7);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(unique), &dist, |b, d| {
            let hammer = Hammer::new();
            b.iter(|| hammer.reconstruct(d));
        });
    }
    group.finish();
}

fn bench_width_independence(c: &mut Criterion) {
    // The paper's Table 3 point: the op count does not depend on the
    // qubit count (our distance kernel is one XOR + POPCNT either way).
    let mut group = c.benchmark_group("hammer_width_independence");
    for &n_bits in &[16usize, 32, 64] {
        let dist = synthetic(2048, n_bits, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n_bits), &dist, |b, d| {
            let hammer = Hammer::new();
            b.iter(|| hammer.reconstruct(d));
        });
    }
    group.finish();
}

fn bench_global_chs(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_chs");
    for &unique in &[512usize, 2048] {
        let dist = synthetic(unique, 24, 13);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(unique), &dist, |b, d| {
            b.iter(|| global_chs(d.as_slice(), 12));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reconstruct, bench_width_independence, bench_global_chs
}
criterion_main!(benches);

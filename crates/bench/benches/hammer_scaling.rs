//! Table 3 / §6.6: HAMMER's O(N²) runtime scaling in the number of
//! unique outcomes, the weight-derivation kernel on its own, and the
//! blocked/branchless/work-stealing kernel sweep up to 256K unique
//! outcomes (the paper's largest — extrapolated — row, measured here).
//!
//! The 256K point makes a full sweep expensive; `cargo bench -- --test`
//! runs everything once in smoke mode (and shrinks the sweep), which is
//! what CI exercises. `repro bench-kernel` is the canonical artifact
//! emitter for the measured trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hammer_core::{global_chs, kernel, FilterRule, Hammer, KernelTuning};
use hammer_dist::{BitString, Distribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(unique: usize, n_bits: usize, seed: u64) -> Distribution {
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = if n_bits == 64 {
        u64::MAX
    } else {
        (1u64 << n_bits) - 1
    };
    let mut keys = std::collections::HashSet::with_capacity(unique);
    while keys.len() < unique {
        keys.insert(rng.gen::<u64>() & mask);
    }
    let pairs = keys
        .into_iter()
        .map(|k| (BitString::new(k, n_bits), rng.gen::<f64>() + 1e-6));
    Distribution::from_probs(n_bits, pairs).expect("valid distribution")
}

/// `Hammer`'s own default worker policy, reused for the kernel-level
/// calls so the sweep measures the thread count reconstruction uses.
fn worker_threads() -> usize {
    Hammer::new().threads()
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("hammer_reconstruct");
    for &unique in &[512usize, 2048, 8192] {
        let dist = synthetic(unique, 24, 7);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(unique), &dist, |b, d| {
            let hammer = Hammer::new();
            b.iter(|| hammer.reconstruct(d));
        });
    }
    group.finish();
}

fn bench_width_independence(c: &mut Criterion) {
    // The paper's Table 3 point: the op count does not depend on the
    // qubit count (our distance kernel is one XOR + POPCNT either way).
    let mut group = c.benchmark_group("hammer_width_independence");
    for &n_bits in &[16usize, 32, 64] {
        let dist = synthetic(2048, n_bits, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n_bits), &dist, |b, d| {
            let hammer = Hammer::new();
            b.iter(|| hammer.reconstruct(d));
        });
    }
    group.finish();
}

fn bench_global_chs(c: &mut Criterion) {
    let mut group = c.benchmark_group("global_chs");
    for &unique in &[512usize, 2048] {
        let dist = synthetic(unique, 24, 13);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(unique), &dist, |b, d| {
            b.iter(|| global_chs(d.keys(), d.probs(), 12));
        });
    }
    group.finish();
}

/// The Table 3 sweep proper: N ∈ {4K, 16K, 64K, 256K} unique 64-bit
/// outcomes through the blocked/branchless/work-stealing kernel, with
/// the PR 1 scalar reference kernel timed alongside at the sizes where
/// it is affordable.
fn bench_kernel_scaling(c: &mut Criterion) {
    let smoke = c.smoke();
    let threads = worker_threads();
    let tuning = KernelTuning::default();
    let weights: Vec<f64> = (0..32).map(|d| 1.0 / (1.0 + d as f64)).collect();
    let filter = FilterRule::LowerProbabilityOnly;

    let sweep: &[usize] = if smoke {
        &[1 << 12, 1 << 14]
    } else {
        &[1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    let reference_sweep: &[usize] = if smoke {
        &[1 << 12]
    } else {
        &[1 << 12, 1 << 14]
    };

    let mut group = c.benchmark_group("kernel_scaling");
    for &unique in sweep {
        let dist = synthetic(unique, 64, 21);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::new("blocked_ws", unique), &dist, |b, d| {
            b.iter(|| {
                kernel::scores_parallel(d.keys(), d.probs(), &weights, filter, threads, &tuning)
            });
        });
    }
    for &unique in reference_sweep {
        let dist = synthetic(unique, 64, 21);
        group.throughput(Throughput::Elements((unique * unique) as u64));
        group.bench_with_input(BenchmarkId::new("reference", unique), &dist, |b, d| {
            b.iter(|| kernel::reference::scores_parallel(d.as_slice(), &weights, filter, threads));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reconstruct, bench_width_independence, bench_global_chs
}
criterion_group! {
    name = kernel_benches;
    // The 256K point costs minutes per sample; two samples keep the full
    // sweep honest without making `cargo bench` an hour-long run.
    config = Criterion::default().sample_size(2);
    targets = bench_kernel_scaling
}
criterion_main!(benches, kernel_benches);

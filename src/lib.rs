//! # hammer — a reproduction of HAMMER (ASPLOS '22)
//!
//! This facade crate re-exports the public API of the HAMMER reproduction
//! workspace. The workspace implements, from scratch:
//!
//! * [`dist`] — bitstrings, trial-count histograms, probability
//!   distributions, Hamming spectra and the paper's figures of merit
//!   (PST, IST, EHD, TVD, …).
//! * [`sim`] — a state-vector quantum-circuit simulator with stochastic
//!   Pauli noise, readout error, device presets, a SWAP-routing transpiler
//!   and entanglement-entropy analysis. This is the stand-in for the IBM
//!   and Google hardware used in the paper.
//! * [`graphs`] — MaxCut problem instances (Erdős–Rényi, d-regular, grid,
//!   ring, Sherrington–Kirkpatrick).
//! * [`circuits`] — the paper's benchmark circuits: Bernstein–Vazirani,
//!   GHZ, QAOA-Maxcut and the random-identity circuits of Section 7.
//! * [`core`] — **Hamming Reconstruction** itself (Algorithm 1), with
//!   configurable variants for ablation studies.
//! * [`qaoa`] — the variational QAOA workflow (expectation, landscape
//!   scans, Nelder–Mead optimization) with pluggable post-processing.
//! * [`serve`] — the production-style serving subsystem: a TCP service
//!   with a binary wire protocol, request batching/coalescing and a
//!   distribution cache over reconstruct/metrics/sample pipelines.
//!
//! # Quickstart
//!
//! ```
//! use hammer::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // A 6-bit Bernstein–Vazirani benchmark with secret key 101101
//! // (6 data qubits + 1 ancilla).
//! let bench = BernsteinVazirani::new(BitString::parse("101101")?);
//! let circuit = bench.circuit();
//!
//! // Execute on a noisy simulated device for 8192 trials.
//! let device = DeviceModel::ibm_paris(circuit.num_qubits());
//! let counts = TrajectoryEngine::new(&device).sample(&circuit, 8192, &mut rng)?;
//! let noisy = bench.data_counts(&counts).to_distribution();
//!
//! // Post-process with HAMMER.
//! let recovered = Hammer::new().reconstruct(&noisy);
//!
//! // The probability of the correct answer goes up.
//! let before = pst(&noisy, &[bench.key()]);
//! let after = pst(&recovered, &[bench.key()]);
//! assert!(after >= before);
//! # Ok(())
//! # }
//! ```

pub use hammer_circuits as circuits;
pub use hammer_core as core;
pub use hammer_dist as dist;
pub use hammer_graphs as graphs;
pub use hammer_qaoa as qaoa;
pub use hammer_serve as serve;
pub use hammer_sim as sim;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use hammer_circuits::{
        bernstein_vazirani, ghz, ghz_correct_outcomes, qaoa_maxcut, BernsteinVazirani, QaoaLayer,
        RandomIdentityBuilder,
    };
    pub use hammer_core::{Hammer, HammerConfig};
    pub use hammer_dist::{
        metrics::{cost_ratio, ehd, hellinger_fidelity, ist, pst, tvd},
        BitString, Counts, Distribution, HammingSpectrum,
    };
    pub use hammer_graphs::{generators, Graph, MaxCut};
    pub use hammer_qaoa::{EngineKind, PostProcess, QaoaOutcome, QaoaParams, QaoaRunner};
    pub use hammer_serve::{serve, DeviceSpec, SampleJob, ServeClient, ServeConfig};
    pub use hammer_sim::{
        AutoEngine, Circuit, DeviceModel, Gate, NoiseEngine, NoiseModel, PropagationEngine,
        StabilizerEngine, StateVector, TrajectoryEngine, WorkerPool,
    };
}
